"""Vulnerability similarity between products (paper Definition 1).

The similarity of two products is the Jaccard coefficient of their
vulnerability sets::

    sim(x_i, x_j) = |V_{x_i} ∩ V_{x_j}| / |V_{x_i} ∪ V_{x_j}|

:func:`jaccard_similarity` implements the coefficient on raw sets;
:class:`SimilarityTable` stores the pairwise similarities for a product
universe (the paper's "Similarity Tables", e.g. its Tables II and III) and is
the object every downstream component — MRF pairwise costs, the BN diversity
metric, and the propagation simulator — consumes.
:func:`similarity_table_from_database` derives a table from an NVD-like
database, which is the paper's CVE-SEARCH pipeline.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.nvd.cpe import CPE
from repro.nvd.database import VulnerabilityDatabase

__all__ = [
    "jaccard_similarity",
    "SimilarityTable",
    "similarity_table_from_database",
]


def jaccard_similarity(left: AbstractSet, right: AbstractSet) -> float:
    """Jaccard coefficient of two sets, with ``J(∅, ∅) = 0``.

    >>> jaccard_similarity({1, 2, 3}, {2, 3, 4})
    0.5
    """
    if not left and not right:
        return 0.0
    intersection = len(left & right)
    union = len(left | right)
    return intersection / union


class SimilarityTable:
    """Symmetric pairwise vulnerability-similarity table over named products.

    Keys are *product names* (the identifiers used in the network model, e.g.
    ``"Win7"``), not CPEs; :func:`similarity_table_from_database` bridges the
    two.  Semantics:

    * ``sim(p, p) == 1.0`` always (a product is maximally similar to itself);
      the paper's diagonal entries hold vulnerability counts instead, which we
      keep separately in :attr:`vulnerability_counts`.
    * Unspecified off-diagonal pairs default to 0.0 (no shared
      vulnerabilities) — the classical no-shared-vulnerability assumption the
      paper relaxes only where data says otherwise.
    * The table is symmetric by construction; setting (a, b) sets (b, a).
    """

    def __init__(
        self,
        products: Iterable[str] = (),
        pairs: Optional[Mapping[Tuple[str, str], float]] = None,
        vulnerability_counts: Optional[Mapping[str, int]] = None,
        shared_counts: Optional[Mapping[Tuple[str, str], int]] = None,
    ) -> None:
        self._version = 0
        self._products: List[str] = []
        self._index: Dict[str, int] = {}
        self._pairs: Dict[Tuple[str, str], float] = {}
        self.vulnerability_counts: Dict[str, int] = dict(vulnerability_counts or {})
        self.shared_counts: Dict[Tuple[str, str], int] = {}
        for product in products:
            self.add_product(product)
        if pairs:
            for (a, b), value in pairs.items():
                self.set(a, b, value)
        if shared_counts:
            for (a, b), count in shared_counts.items():
                self.shared_counts[_key(a, b)] = int(count)

    # ------------------------------------------------------------- mutation

    def add_product(self, product: str) -> None:
        """Register a product name (idempotent)."""
        if product not in self._index:
            self._index[product] = len(self._products)
            self._products.append(product)
            self._version += 1

    def set(self, a: str, b: str, value: float) -> None:
        """Set the symmetric similarity of a pair; values must be in [0, 1]."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"similarity must be in [0, 1], got {value}")
        if a == b and value != 1.0:
            raise ValueError("self-similarity is fixed at 1.0")
        self.add_product(a)
        self.add_product(b)
        if a != b:
            self._pairs[_key(a, b)] = float(value)
            self._version += 1

    def apply_updates(self, pairs: Mapping[Tuple[str, str], float]) -> None:
        """Batch-patch pair similarities (a CVE-feed delta).

        Each entry re-scores one product pair via :meth:`set`; values are
        validated before any is applied, so a bad feed leaves the table
        untouched.
        """
        for (a, b), value in pairs.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"similarity must be in [0, 1], got {value} for ({a}, {b})"
                )
            if a == b and value != 1.0:
                raise ValueError("self-similarity is fixed at 1.0")
        for (a, b), value in pairs.items():
            self.set(a, b, value)

    @property
    def version(self) -> int:
        """Monotonic mutation counter — bumps on every product or pair
        change, letting consumers (cached cost matrices, live MRF plans)
        detect staleness without diffing the table."""
        return self._version

    # -------------------------------------------------------------- queries

    @property
    def products(self) -> List[str]:
        """Registered product names in insertion order."""
        return list(self._products)

    def __contains__(self, product: str) -> bool:
        return product in self._index

    def get(self, a: str, b: str) -> float:
        """Similarity of a pair; identical names give 1.0, unknown pairs 0.0."""
        if a == b:
            return 1.0
        return self._pairs.get(_key(a, b), 0.0)

    def __call__(self, a: str, b: str) -> float:
        return self.get(a, b)

    def matrix(self, products: Optional[Iterable[str]] = None) -> np.ndarray:
        """Dense symmetric matrix over ``products`` (default: all registered).

        The diagonal is 1.0.  This is the form the MRF pairwise cost and the
        vectorised simulator consume.
        """
        names = list(products) if products is not None else list(self._products)
        size = len(names)
        out = np.zeros((size, size), dtype=float)
        for i, a in enumerate(names):
            out[i, i] = 1.0
            for j in range(i + 1, size):
                value = self.get(a, names[j])
                out[i, j] = value
                out[j, i] = value
        return out

    def mean_offdiagonal(self) -> float:
        """Mean similarity over all distinct registered pairs (0 if <2)."""
        n = len(self._products)
        if n < 2:
            return 0.0
        total = sum(
            self.get(self._products[i], self._products[j])
            for i in range(n)
            for j in range(i + 1, n)
        )
        return total / (n * (n - 1) / 2)

    def restricted_to(self, products: Iterable[str]) -> "SimilarityTable":
        """A new table containing only the given products and their pairs."""
        names = [p for p in products if p in self._index]
        table = SimilarityTable(products=names)
        for i, a in enumerate(names):
            if a in self.vulnerability_counts:
                table.vulnerability_counts[a] = self.vulnerability_counts[a]
            for b in names[i + 1 :]:
                value = self.get(a, b)
                if value > 0.0:
                    table.set(a, b, value)
                key = _key(a, b)
                if key in self.shared_counts:
                    table.shared_counts[key] = self.shared_counts[key]
        return table

    def copy(self) -> "SimilarityTable":
        """An independent deep copy (same products, pairs and counts)."""
        clone = SimilarityTable(products=self._products)
        clone._pairs.update(self._pairs)
        clone.vulnerability_counts.update(self.vulnerability_counts)
        clone.shared_counts.update(self.shared_counts)
        return clone

    def merged_with(self, other: "SimilarityTable") -> "SimilarityTable":
        """Union of two tables; ``other`` wins on conflicting pairs."""
        merged = SimilarityTable(products=self._products)
        merged._pairs.update(self._pairs)
        merged.vulnerability_counts.update(self.vulnerability_counts)
        merged.shared_counts.update(self.shared_counts)
        for product in other.products:
            merged.add_product(product)
        merged._pairs.update(other._pairs)
        merged.vulnerability_counts.update(other.vulnerability_counts)
        merged.shared_counts.update(other.shared_counts)
        return merged

    # ---------------------------------------------------------- presentation

    def format_table(self, precision: int = 3) -> str:
        """Render in the paper's lower-triangular layout (Tables II/III).

        Off-diagonal cells show ``similarity (shared count)`` when the shared
        count is known, otherwise just the similarity; diagonal cells show the
        product's total vulnerability count when known, else 1.0.
        """
        names = self._products
        width = max((len(n) for n in names), default=8) + 2
        cell = width + 10
        lines = [" " * width + "".join(f"{n:>{cell}}" for n in names)]
        for i, row in enumerate(names):
            cells = []
            for j, col in enumerate(names[: i + 1]):
                if i == j:
                    count = self.vulnerability_counts.get(row)
                    text = f"1.00 ({count})" if count is not None else "1.00"
                else:
                    value = self.get(row, col)
                    shared = self.shared_counts.get(_key(row, col))
                    text = (
                        f"{value:.{precision}f} ({shared})"
                        if shared is not None
                        else f"{value:.{precision}f}"
                    )
                cells.append(f"{text:>{cell}}")
            lines.append(f"{row:<{width}}" + "".join(cells))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SimilarityTable({len(self._products)} products, "
            f"{len(self._pairs)} explicit pairs)"
        )


def similarity_table_from_database(
    database: VulnerabilityDatabase,
    product_cpes: Mapping[str, CPE],
    since: Optional[int] = None,
    until: Optional[int] = None,
) -> SimilarityTable:
    """Build a similarity table from an NVD-like database (paper Section III).

    Args:
        database: the CVE store to query.
        product_cpes: mapping from the product names used in the network
            model to the CPE query identifying them in the database (each
            release/version is treated as a distinct product, as the paper
            does for Windows 7 vs Windows 8.1).
        since / until: inclusive publication-year bounds (the paper uses
            1999-2016).

    Returns:
        A :class:`SimilarityTable` with Jaccard similarities, per-product
        vulnerability counts and pairwise shared counts filled in.
    """
    vuln_sets = {
        name: database.vulnerabilities_of(cpe, since=since, until=until)
        for name, cpe in product_cpes.items()
    }
    table = SimilarityTable(products=vuln_sets.keys())
    names = list(vuln_sets)
    for name in names:
        table.vulnerability_counts[name] = len(vuln_sets[name])
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            shared = vuln_sets[a] & vuln_sets[b]
            table.set(a, b, jaccard_similarity(vuln_sets[a], vuln_sets[b]))
            table.shared_counts[_key(a, b)] = len(shared)
    return table


def _key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)
