"""Common Platform Enumeration (CPE) naming scheme.

NVD entries list the products affected by a vulnerability as CPE URIs such as
``cpe:/o:microsoft:windows_7`` or ``cpe:/a:google:chrome:50.0``.  The paper
(Section III) uses CPE queries to sort CVE records per product; this module
implements the subset of the CPE 2.2 URI scheme needed for that: parsing,
formatting, and prefix matching (a query CPE matches a record CPE when every
specified component agrees).

Only the components the paper uses are modelled: *part* (``a`` application,
``o`` operating system, ``h`` hardware), *vendor*, *product*, *version* and
*update*.  Missing trailing components act as wildcards in a match, exactly
like the CPE search granularity the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["CPE", "CPEError", "PART_APPLICATION", "PART_OS", "PART_HARDWARE"]

PART_APPLICATION = "a"
PART_OS = "o"
PART_HARDWARE = "h"

_VALID_PARTS = frozenset({PART_APPLICATION, PART_OS, PART_HARDWARE})


class CPEError(ValueError):
    """Raised when a CPE URI cannot be parsed or is malformed."""


@dataclass(frozen=True, order=True)
class CPE:
    """A parsed CPE 2.2 URI.

    Attributes:
        part: ``"a"`` (application), ``"o"`` (OS) or ``"h"`` (hardware).
        vendor: vendor name, lowercase (e.g. ``"microsoft"``).
        product: product name, lowercase (e.g. ``"windows_7"``).
        version: optional version component; ``None`` acts as a wildcard.
        update: optional update/patch-level component.
    """

    part: str
    vendor: str
    product: str
    version: Optional[str] = None
    update: Optional[str] = None

    def __post_init__(self) -> None:
        if self.part not in _VALID_PARTS:
            raise CPEError(
                f"invalid CPE part {self.part!r}; expected one of {sorted(_VALID_PARTS)}"
            )
        if not self.vendor:
            raise CPEError("CPE vendor must be non-empty")
        if not self.product:
            raise CPEError("CPE product must be non-empty")

    @classmethod
    def parse(cls, uri: str) -> "CPE":
        """Parse a ``cpe:/...`` URI.

        Components equal to ``-`` or empty are treated as unspecified
        (``None``), matching how NVD uses ``-`` for "any version".

        >>> CPE.parse("cpe:/o:microsoft:windows_7")
        CPE(part='o', vendor='microsoft', product='windows_7', version=None, update=None)
        >>> CPE.parse("cpe:/a:google:chrome:50.0").version
        '50.0'
        """
        text = uri.strip().lower()
        if not text.startswith("cpe:/"):
            raise CPEError(f"not a CPE 2.2 URI: {uri!r}")
        body = text[len("cpe:/") :]
        fields = body.split(":")
        if len(fields) < 3:
            raise CPEError(f"CPE URI needs at least part:vendor:product: {uri!r}")
        part, vendor, product = fields[0], fields[1], fields[2]
        version = _component(fields, 3)
        update = _component(fields, 4)
        return cls(part=part, vendor=vendor, product=product, version=version, update=update)

    def uri(self) -> str:
        """Format back to a ``cpe:/...`` URI (round-trips through parse)."""
        parts = [self.part, self.vendor, self.product]
        if self.version is not None:
            parts.append(self.version)
            if self.update is not None:
                parts.append(self.update)
        elif self.update is not None:
            parts.append("-")
            parts.append(self.update)
        return "cpe:/" + ":".join(parts)

    def matches(self, other: "CPE") -> bool:
        """Return True when this CPE, used as a *query*, matches ``other``.

        Every component specified on the query must equal the corresponding
        component of ``other``; components left unspecified (``None``) match
        anything.  This mirrors the prefix-query behaviour of the CPE search
        the paper used to collect vulnerabilities per product.

        >>> q = CPE.parse("cpe:/a:google:chrome")
        >>> q.matches(CPE.parse("cpe:/a:google:chrome:50.0"))
        True
        >>> q.matches(CPE.parse("cpe:/a:mozilla:firefox"))
        False
        """
        if (self.part, self.vendor, self.product) != (
            other.part,
            other.vendor,
            other.product,
        ):
            return False
        if self.version is not None and self.version != other.version:
            return False
        if self.update is not None and self.update != other.update:
            return False
        return True

    def without_version(self) -> "CPE":
        """Return a copy with version/update stripped (a product-level query)."""
        return CPE(part=self.part, vendor=self.vendor, product=self.product)

    def __str__(self) -> str:
        return self.uri()


def _component(fields: list, index: int) -> Optional[str]:
    """Extract an optional CPE component, mapping ``-``/empty to None."""
    if index >= len(fields):
        return None
    value = fields[index]
    if value in ("", "-", "*"):
        return None
    return value
