"""CVE record data model.

A :class:`CVERecord` is a single vulnerability entry as published by NVD: an
identifier (``CVE-<year>-<serial>``), the publication year, a CVSS base score
and the list of affected products expressed as CPE URIs (Table I of the paper
shows such an entry for CVE-2016-7153).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple

from repro.nvd.cpe import CPE

__all__ = ["CVERecord", "CVEError"]

_CVE_ID_RE = re.compile(r"^CVE-(\d{4})-(\d{4,})$")


class CVEError(ValueError):
    """Raised for malformed CVE records."""


@dataclass(frozen=True)
class CVERecord:
    """One NVD vulnerability entry.

    Attributes:
        cve_id: canonical identifier, e.g. ``"CVE-2016-7153"``.
        year: publication year (must agree with the identifier).
        cvss: CVSS v2 base score in ``[0, 10]``.
        affected: CPEs of the products the vulnerability applies to.
        description: free-text summary (optional, defaults to empty).
    """

    cve_id: str
    year: int
    cvss: float = 5.0
    affected: Tuple[CPE, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        match = _CVE_ID_RE.match(self.cve_id)
        if match is None:
            raise CVEError(f"malformed CVE identifier: {self.cve_id!r}")
        if int(match.group(1)) != self.year:
            raise CVEError(
                f"CVE id year {match.group(1)} disagrees with year field {self.year}"
            )
        if not 0.0 <= self.cvss <= 10.0:
            raise CVEError(f"CVSS score out of range [0, 10]: {self.cvss}")
        # Normalise affected to a tuple so records stay hashable.
        object.__setattr__(self, "affected", tuple(self.affected))

    @classmethod
    def build(
        cls,
        year: int,
        serial: int,
        affected: Iterable[CPE],
        cvss: float = 5.0,
        description: str = "",
    ) -> "CVERecord":
        """Construct a record from the year/serial pair.

        >>> rec = CVERecord.build(2016, 7153, [CPE.parse("cpe:/a:google:chrome")])
        >>> rec.cve_id
        'CVE-2016-7153'
        """
        return cls(
            cve_id=f"CVE-{year}-{serial:04d}",
            year=year,
            cvss=cvss,
            affected=tuple(affected),
            description=description,
        )

    def affects(self, query: CPE) -> bool:
        """Return True when any affected CPE matches the ``query`` CPE."""
        return any(query.matches(cpe) for cpe in self.affected)

    def affected_products(self) -> FrozenSet[CPE]:
        """The distinct product-level CPEs (version stripped) this CVE hits."""
        return frozenset(cpe.without_version() for cpe in self.affected)
