"""The paper's published similarity data, embedded as curated datasets.

Tables II and III of the paper report pairwise Jaccard vulnerability
similarities (and shared-vulnerability counts) for 9 operating systems and
8 web browsers, computed from NVD over 1999-2016.  We embed those numbers
verbatim so the case study runs on exactly the data the paper used, with no
network access.

The paper states the database-server similarities "are obtained in the same
way" but does not print them; :func:`paper_database_similarity` provides a
curated table following the same structural pattern (high overlap inside a
vendor/lineage — MariaDB is a MySQL fork, MS SQL versions overlap — and
negligible overlap across vendors).  The substitution is recorded in
DESIGN.md.

Product name constants (``WIN_7``, ``IE10``, ...) are exported so the case
study and tests refer to products consistently.
"""

from __future__ import annotations

from repro.nvd.similarity import SimilarityTable

__all__ = [
    "paper_os_similarity",
    "paper_browser_similarity",
    "paper_database_similarity",
    "paper_similarity_table",
    "OS_PRODUCTS",
    "BROWSER_PRODUCTS",
    "DATABASE_PRODUCTS",
    "WIN_XP",
    "WIN_7",
    "WIN_81",
    "WIN_10",
    "UBUNTU_1404",
    "DEBIAN_80",
    "MAC_105",
    "SUSE_132",
    "FEDORA",
    "IE8",
    "IE10",
    "EDGE",
    "CHROME",
    "FIREFOX",
    "SAFARI",
    "SEAMONKEY",
    "OPERA",
    "MSSQL_08",
    "MSSQL_14",
    "MYSQL_55",
    "MARIADB_10",
]

# --------------------------------------------------------------------------
# Canonical product names.
# --------------------------------------------------------------------------

WIN_XP = "WinXP2"
WIN_7 = "Win7"
WIN_81 = "Win8.1"
WIN_10 = "Win10"
UBUNTU_1404 = "Ubt14.04"
DEBIAN_80 = "Deb8.0"
MAC_105 = "Mac10.5"
SUSE_132 = "Suse13.2"
FEDORA = "Fedora"

IE8 = "IE8"
IE10 = "IE10"
EDGE = "Edge"
CHROME = "Chrome"
FIREFOX = "Firefox"
SAFARI = "Safari"
SEAMONKEY = "SeaMonkey"
OPERA = "Opera"

MSSQL_08 = "MS SQL 08"
MSSQL_14 = "MS SQL 14"
MYSQL_55 = "MySQL 5.5"
MARIADB_10 = "MariaDB 10"

OS_PRODUCTS = (
    WIN_XP,
    WIN_7,
    WIN_81,
    WIN_10,
    UBUNTU_1404,
    DEBIAN_80,
    MAC_105,
    SUSE_132,
    FEDORA,
)
BROWSER_PRODUCTS = (IE8, IE10, EDGE, CHROME, FIREFOX, SAFARI, SEAMONKEY, OPERA)
DATABASE_PRODUCTS = (MSSQL_08, MSSQL_14, MYSQL_55, MARIADB_10)

# --------------------------------------------------------------------------
# Table II — operating systems.  Each entry: (row, column, similarity,
# shared-vulnerability count).  Diagonal counts are total vulnerabilities.
# --------------------------------------------------------------------------

_OS_TOTALS = {
    WIN_XP: 479,
    WIN_7: 1028,
    WIN_81: 572,
    WIN_10: 453,
    UBUNTU_1404: 612,
    DEBIAN_80: 519,
    MAC_105: 424,
    SUSE_132: 492,
    FEDORA: 367,
}

_OS_PAIRS = [
    (WIN_7, WIN_XP, 0.278, 328),
    (WIN_81, WIN_XP, 0.009, 10),
    (WIN_81, WIN_7, 0.228, 298),
    (WIN_10, WIN_XP, 0.0, 0),
    (WIN_10, WIN_7, 0.124, 164),
    (WIN_10, WIN_81, 0.697, 421),
    (DEBIAN_80, UBUNTU_1404, 0.208, 195),
    (MAC_105, WIN_7, 0.081, 109),
    (SUSE_132, UBUNTU_1404, 0.170, 161),
    (SUSE_132, DEBIAN_80, 0.112, 102),
    (FEDORA, UBUNTU_1404, 0.083, 75),
    (FEDORA, DEBIAN_80, 0.049, 41),
    (FEDORA, MAC_105, 0.001, 1),
    (FEDORA, SUSE_132, 0.116, 89),
]

# --------------------------------------------------------------------------
# Table III — web browsers.
# --------------------------------------------------------------------------

_BROWSER_TOTALS = {
    IE8: 349,
    IE10: 513,
    EDGE: 194,
    CHROME: 1661,
    FIREFOX: 1502,
    SAFARI: 766,
    SEAMONKEY: 492,
    OPERA: 225,
}

_BROWSER_PAIRS = [
    (IE10, IE8, 0.386, 240),
    (EDGE, IE8, 0.014, 7),
    (EDGE, IE10, 0.121, 73),
    (CHROME, EDGE, 0.001, 2),
    (FIREFOX, EDGE, 0.001, 2),
    (FIREFOX, CHROME, 0.005, 15),
    (SAFARI, EDGE, 0.002, 2),
    (SAFARI, CHROME, 0.009, 21),
    (SAFARI, FIREFOX, 0.003, 6),
    (SEAMONKEY, CHROME, 0.001, 3),
    (SEAMONKEY, FIREFOX, 0.450, 683),
    (SEAMONKEY, SAFARI, 0.001, 1),
    (OPERA, EDGE, 0.003, 1),
    (OPERA, CHROME, 0.003, 6),
    (OPERA, FIREFOX, 0.004, 7),
    (OPERA, SAFARI, 0.004, 4),
    # The paper prints 1.00 (492) for Opera/SeaMonkey, an obvious typesetting
    # slip (it duplicates SeaMonkey's diagonal).  The two browsers share no
    # engine lineage; consistent with the rest of the row we use a small
    # overlap of the same magnitude as Opera's other entries.
    (OPERA, SEAMONKEY, 0.004, 3),
]

# --------------------------------------------------------------------------
# Database servers — curated (see module docstring).
# --------------------------------------------------------------------------

_DATABASE_TOTALS = {
    MSSQL_08: 96,
    MSSQL_14: 61,
    MYSQL_55: 487,
    MARIADB_10: 262,
}

_DATABASE_PAIRS = [
    (MSSQL_14, MSSQL_08, 0.231, 28),
    (MYSQL_55, MSSQL_08, 0.0, 0),
    (MYSQL_55, MSSQL_14, 0.0, 0),
    (MARIADB_10, MSSQL_08, 0.0, 0),
    (MARIADB_10, MSSQL_14, 0.0, 0),
    (MARIADB_10, MYSQL_55, 0.388, 209),
]


def _build(totals, pairs) -> SimilarityTable:
    table = SimilarityTable(products=totals.keys())
    table.vulnerability_counts.update(totals)
    for row, col, similarity, shared in pairs:
        table.set(row, col, similarity)
        table.shared_counts[(row, col) if row <= col else (col, row)] = shared
    return table


def paper_os_similarity() -> SimilarityTable:
    """Paper Table II: similarity of 9 common OS products (CVE 1999-2016)."""
    return _build(_OS_TOTALS, _OS_PAIRS)


def paper_browser_similarity() -> SimilarityTable:
    """Paper Table III: similarity of 8 common web browsers (CVE 1999-2016)."""
    return _build(_BROWSER_TOTALS, _BROWSER_PAIRS)


def paper_database_similarity() -> SimilarityTable:
    """Curated database-server similarity table (see module docstring)."""
    return _build(_DATABASE_TOTALS, _DATABASE_PAIRS)


def paper_similarity_table() -> SimilarityTable:
    """The union of the OS, browser and database tables.

    This is the table the Stuxnet case study (paper Section VII) consumes:
    one store covering every product in its Table IV catalogue.
    """
    return (
        paper_os_similarity()
        .merged_with(paper_browser_similarity())
        .merged_with(paper_database_similarity())
    )
