"""Vulnerability-database substrate: CPE naming, CVE records and similarity.

The paper (Section III) measures the *vulnerability similarity* of two
products as the Jaccard coefficient of their CVE sets, computed from the
National Vulnerability Database (NVD).  This subpackage provides everything
needed to reproduce that pipeline offline:

``repro.nvd.cpe``
    The Common Platform Enumeration naming scheme (parse, format, match).
``repro.nvd.cve``
    CVE record data model (id, year, CVSS score, affected CPEs).
``repro.nvd.database``
    An NVD-like queryable store of CVE records.
``repro.nvd.generator``
    A synthetic NVD feed generator used where the paper used a live NVD dump.
``repro.nvd.similarity``
    The Jaccard similarity metric (Definition 1) and ``SimilarityTable``.
``repro.nvd.datasets``
    The paper's published similarity tables (Tables II and III) embedded as
    curated data, so the case study uses the exact numbers the paper used.
"""

from repro.nvd.cpe import CPE
from repro.nvd.cve import CVERecord
from repro.nvd.database import VulnerabilityDatabase
from repro.nvd.generator import SyntheticNVDConfig, generate_synthetic_nvd
from repro.nvd.similarity import (
    SimilarityTable,
    jaccard_similarity,
    similarity_table_from_database,
)
from repro.nvd.datasets import (
    paper_browser_similarity,
    paper_database_similarity,
    paper_os_similarity,
    paper_similarity_table,
)

__all__ = [
    "CPE",
    "CVERecord",
    "VulnerabilityDatabase",
    "SyntheticNVDConfig",
    "generate_synthetic_nvd",
    "SimilarityTable",
    "jaccard_similarity",
    "similarity_table_from_database",
    "paper_browser_similarity",
    "paper_database_similarity",
    "paper_os_similarity",
    "paper_similarity_table",
]
