"""Similarity-table persistence and CVSS-weighted similarity.

Two practical extensions of the Section III measurement pipeline:

* **Persistence** — similarity tables are expensive to compute against a
  large feed; :func:`save_similarity` / :func:`load_similarity` round-trip
  them through JSON, and :func:`similarity_to_csv` /
  :func:`similarity_from_csv` exchange them with spreadsheets.
* **CVSS weighting** — the paper's future-work discussion cites Nayak et
  al., "Some vulnerabilities are different than others".
  :func:`weighted_similarity_table_from_database` implements that idea:
  instead of counting shared CVEs uniformly, each vulnerability contributes
  its CVSS score, so two products sharing a handful of critical
  vulnerabilities rank as more dangerous a pairing than two sharing many
  trivial ones::

      sim_w(x, y) = Σ_{v ∈ Vx ∩ Vy} w(v)  /  Σ_{v ∈ Vx ∪ Vy} w(v)

  With ``w ≡ 1`` this reduces exactly to the paper's Jaccard metric (a
  property the tests assert).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Callable, Mapping, Optional, Union

from repro.nvd.cpe import CPE
from repro.nvd.database import VulnerabilityDatabase
from repro.nvd.similarity import SimilarityTable

__all__ = [
    "save_similarity",
    "load_similarity",
    "similarity_to_csv",
    "similarity_from_csv",
    "weighted_similarity_table_from_database",
]


def save_similarity(table: SimilarityTable, path: Union[str, Path]) -> None:
    """Write a similarity table to a JSON file."""
    Path(path).write_text(dumps_similarity(table))


def load_similarity(path: Union[str, Path]) -> SimilarityTable:
    """Read a similarity table from a JSON file written by save_similarity."""
    return loads_similarity(Path(path).read_text())


def dumps_similarity(table: SimilarityTable) -> str:
    """Serialise to a JSON string (products, pairs, counts)."""
    products = table.products
    pairs = []
    for index, a in enumerate(products):
        for b in products[index + 1 :]:
            value = table.get(a, b)
            if value > 0.0:
                pairs.append([a, b, value])
    payload = {
        "products": products,
        "pairs": pairs,
        "vulnerability_counts": dict(table.vulnerability_counts),
        "shared_counts": [
            [a, b, count] for (a, b), count in sorted(table.shared_counts.items())
        ],
    }
    return json.dumps(payload, indent=2)


def loads_similarity(text: str) -> SimilarityTable:
    """Parse a JSON string produced by :func:`dumps_similarity`."""
    payload = json.loads(text)
    table = SimilarityTable(products=payload.get("products", ()))
    for a, b, value in payload.get("pairs", ()):
        table.set(a, b, float(value))
    table.vulnerability_counts.update(payload.get("vulnerability_counts", {}))
    for a, b, count in payload.get("shared_counts", ()):
        key = (a, b) if a <= b else (b, a)
        table.shared_counts[key] = int(count)
    return table


def similarity_to_csv(table: SimilarityTable) -> str:
    """Render the full symmetric matrix as CSV (header row = products)."""
    products = table.products
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["product"] + products)
    for a in products:
        writer.writerow([a] + [f"{table.get(a, b):.6g}" for b in products])
    return buffer.getvalue()


def similarity_from_csv(text: str) -> SimilarityTable:
    """Parse a CSV matrix produced by :func:`similarity_to_csv`.

    The matrix must be symmetric with a unit diagonal; violations raise
    ``ValueError`` so corrupted exports surface immediately.
    """
    rows = list(csv.reader(io.StringIO(text)))
    if not rows or rows[0][:1] != ["product"]:
        raise ValueError("not a similarity CSV: missing 'product' header")
    products = rows[0][1:]
    table = SimilarityTable(products=products)
    values = {}
    for row in rows[1:]:
        if len(row) != len(products) + 1:
            raise ValueError(f"malformed CSV row: {row!r}")
        name = row[0]
        for col, cell in zip(products, row[1:]):
            values[(name, col)] = float(cell)
    for i, a in enumerate(products):
        if abs(values.get((a, a), 1.0) - 1.0) > 1e-9:
            raise ValueError(f"diagonal of {a!r} is not 1.0")
        for b in products[i + 1 :]:
            forward = values.get((a, b), 0.0)
            backward = values.get((b, a), 0.0)
            if abs(forward - backward) > 1e-9:
                raise ValueError(f"asymmetric entries for ({a!r}, {b!r})")
            if forward > 0.0:
                table.set(a, b, forward)
    return table


def weighted_similarity_table_from_database(
    database: VulnerabilityDatabase,
    product_cpes: Mapping[str, CPE],
    weight: Optional[Callable[[object], float]] = None,
    since: Optional[int] = None,
    until: Optional[int] = None,
) -> SimilarityTable:
    """CVSS-weighted (or custom-weighted) similarity table.

    Args:
        database: the CVE store.
        product_cpes: product name → CPE query mapping.
        weight: per-record weight function; defaults to the CVSS base score.
            Pass ``lambda record: 1.0`` to recover the unweighted Jaccard
            metric exactly.
        since / until: inclusive publication-year bounds.
    """
    weigh = weight if weight is not None else (lambda record: record.cvss)
    vuln_sets = {
        name: database.vulnerabilities_of(cpe, since=since, until=until)
        for name, cpe in product_cpes.items()
    }
    weights = {}
    for ids in vuln_sets.values():
        for cve_id in ids:
            if cve_id not in weights:
                value = float(weigh(database.get(cve_id)))
                if value < 0:
                    raise ValueError(f"negative weight for {cve_id}")
                weights[cve_id] = value

    table = SimilarityTable(products=vuln_sets.keys())
    names = list(vuln_sets)
    for name in names:
        table.vulnerability_counts[name] = len(vuln_sets[name])
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            shared = vuln_sets[a] & vuln_sets[b]
            union = vuln_sets[a] | vuln_sets[b]
            shared_weight = sum(weights[v] for v in shared)
            union_weight = sum(weights[v] for v in union)
            value = shared_weight / union_weight if union_weight > 0 else 0.0
            table.set(a, b, min(1.0, value))
            key = (a, b) if a <= b else (b, a)
            table.shared_counts[key] = len(shared)
    return table
