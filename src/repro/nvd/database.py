"""An NVD-like queryable vulnerability database.

The paper built a small pipeline on top of CVE-SEARCH to "fetch necessary
data from NVD, filter out vulnerabilities for each studied product, and
calculate the similarity of vulnerabilities between products".  This module
is that pipeline's offline equivalent: an in-memory store of
:class:`~repro.nvd.cve.CVERecord` objects with CPE-indexed queries.

The store maintains an inverted index from product-level CPE
(part, vendor, product) to the set of CVE ids affecting it, so per-product
vulnerability-set queries — the hot operation when building similarity
tables — are O(matching records) rather than O(database).
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from repro.nvd.cpe import CPE
from repro.nvd.cve import CVERecord

__all__ = ["VulnerabilityDatabase"]


class VulnerabilityDatabase:
    """In-memory NVD-style store of CVE records with CPE queries.

    >>> db = VulnerabilityDatabase()
    >>> db.add(CVERecord.build(2016, 1, [CPE.parse("cpe:/a:google:chrome:50")]))
    >>> db.vulnerabilities_of(CPE.parse("cpe:/a:google:chrome"))
    frozenset({'CVE-2016-0001'})
    """

    def __init__(self, records: Iterable[CVERecord] = ()) -> None:
        self._records: Dict[str, CVERecord] = {}
        # Product-level inverted index: (part, vendor, product) -> cve ids.
        self._by_product: Dict[tuple, Set[str]] = defaultdict(set)
        for record in records:
            self.add(record)

    # ------------------------------------------------------------------ CRUD

    def add(self, record: CVERecord) -> None:
        """Insert a record; re-inserting the same CVE id replaces it."""
        if record.cve_id in self._records:
            self.remove(record.cve_id)
        self._records[record.cve_id] = record
        for cpe in record.affected:
            self._by_product[_product_key(cpe)].add(record.cve_id)

    def remove(self, cve_id: str) -> None:
        """Delete a record by id; unknown ids raise ``KeyError``."""
        record = self._records.pop(cve_id)
        for cpe in record.affected:
            bucket = self._by_product.get(_product_key(cpe))
            if bucket is not None:
                bucket.discard(cve_id)
                if not bucket:
                    del self._by_product[_product_key(cpe)]

    def get(self, cve_id: str) -> CVERecord:
        """Look up a record by CVE id."""
        return self._records[cve_id]

    def __contains__(self, cve_id: str) -> bool:
        return cve_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CVERecord]:
        return iter(self._records.values())

    # --------------------------------------------------------------- queries

    def vulnerabilities_of(
        self,
        query: CPE,
        since: Optional[int] = None,
        until: Optional[int] = None,
    ) -> FrozenSet[str]:
        """CVE ids affecting products matched by ``query``.

        ``since``/``until`` bound the publication year inclusively — the
        paper restricts its study to CVEs published 1999-2016.

        A product-level query (no version) is served from the inverted index;
        versioned queries fall back to per-record matching within the indexed
        candidate set, so both are fast.
        """
        candidates = self._by_product.get(_product_key(query), set())
        result: Set[str] = set()
        for cve_id in candidates:
            record = self._records[cve_id]
            if since is not None and record.year < since:
                continue
            if until is not None and record.year > until:
                continue
            if query.version is None and query.update is None:
                result.add(cve_id)
            elif record.affects(query):
                result.add(cve_id)
        return frozenset(result)

    def products(self) -> List[CPE]:
        """All distinct product-level CPEs present in the database, sorted."""
        return sorted(
            CPE(part=part, vendor=vendor, product=product)
            for (part, vendor, product) in self._by_product
        )

    def records_for_year(self, year: int) -> List[CVERecord]:
        """All records published in ``year`` (sorted by id)."""
        return sorted(
            (r for r in self._records.values() if r.year == year),
            key=lambda r: r.cve_id,
        )

    # ---------------------------------------------------------- serialisation

    def to_json(self) -> str:
        """Serialise the full feed to a JSON string."""
        payload = [
            {
                "cve_id": record.cve_id,
                "year": record.year,
                "cvss": record.cvss,
                "affected": [cpe.uri() for cpe in record.affected],
                "description": record.description,
            }
            for record in sorted(self._records.values(), key=lambda r: r.cve_id)
        ]
        return json.dumps(payload, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "VulnerabilityDatabase":
        """Load a feed previously produced by :meth:`to_json`."""
        payload = json.loads(text)
        records = [
            CVERecord(
                cve_id=entry["cve_id"],
                year=entry["year"],
                cvss=entry.get("cvss", 5.0),
                affected=tuple(CPE.parse(uri) for uri in entry["affected"]),
                description=entry.get("description", ""),
            )
            for entry in payload
        ]
        return cls(records)


def _product_key(cpe: CPE) -> tuple:
    return (cpe.part, cpe.vendor, cpe.product)
