"""Synthetic NVD feed generator.

The paper computes its similarity tables from a live NVD dump, which we do
not have offline.  This module generates a synthetic CVE feed with the same
*sharing structure* the paper's statistical study found:

* a vulnerability frequently affects several versions of the same product
  lineage (Windows 7 / 8.1 / 10 share hundreds of CVEs),
* it sometimes affects sibling products of the same vendor,
* it only rarely crosses vendors (Chrome and Firefox share 15 of ~3000),
* adjacent versions overlap far more than distant ones (Windows XP shares
  328 CVEs with Windows 7 but none with Windows 10).

The generated feed exercises the complete NVD → CPE filter → Jaccard
pipeline end-to-end and produces similarity tables with the same qualitative
shape as the paper's Tables II/III (see ``tests/test_nvd_generator.py`` for
the properties asserted).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.nvd.cpe import CPE, PART_APPLICATION
from repro.nvd.cve import CVERecord
from repro.nvd.database import VulnerabilityDatabase

__all__ = ["ProductLineage", "SyntheticNVDConfig", "generate_synthetic_nvd"]


@dataclass(frozen=True)
class ProductLineage:
    """One vendor product line with a sequence of versioned releases.

    Example: vendor ``microsoft``, product ``windows``, versions
    ``("xp", "7", "8.1", "10")``.  Each version becomes a distinct CPE
    product (``windows_xp``, ``windows_7``, ...), matching the paper's
    convention of treating each release as an individual product.
    """

    vendor: str
    product: str
    versions: Tuple[str, ...]
    category: str = "os"
    part: str = PART_APPLICATION

    def cpes(self) -> List[CPE]:
        """Product-level CPE for every version of this lineage."""
        return [self.cpe_for(version) for version in self.versions]

    def cpe_for(self, version: str) -> CPE:
        """The CPE of one version of this synthetic product."""
        return CPE(part=self.part, vendor=self.vendor, product=f"{self.product}_{version}")


@dataclass
class SyntheticNVDConfig:
    """Parameters controlling the synthetic feed.

    Attributes:
        lineages: the product universe.
        years: inclusive (start, end) publication-year range.
        cves_per_year: CVE records generated per year.
        p_adjacent_version: probability that a CVE in one version also
            affects each *adjacent* version of the same lineage (decays
            geometrically with version distance).
        p_same_vendor: probability of spreading to another lineage of the
            same vendor (per lineage).
        p_cross_vendor: probability of spreading to a lineage of a different
            vendor in the same category (per lineage) — kept small, as the
            paper's data shows cross-vendor sharing is rare but non-zero.
        seed: PRNG seed; the feed is fully deterministic given the config.
    """

    lineages: Sequence[ProductLineage] = field(default_factory=tuple)
    years: Tuple[int, int] = (1999, 2016)
    cves_per_year: int = 200
    p_adjacent_version: float = 0.55
    p_same_vendor: float = 0.08
    p_cross_vendor: float = 0.015
    seed: int = 7

    def __post_init__(self) -> None:
        if not self.lineages:
            self.lineages = default_lineages()
        start, end = self.years
        if start > end:
            raise ValueError(f"invalid year range: {self.years}")
        for name in ("p_adjacent_version", "p_same_vendor", "p_cross_vendor"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")


def default_lineages() -> Tuple[ProductLineage, ...]:
    """A product universe mirroring the paper's study subjects."""
    return (
        ProductLineage("microsoft", "windows", ("xp", "7", "8.1", "10"), "os", "o"),
        ProductLineage("canonical", "ubuntu", ("12.04", "14.04", "16.04"), "os", "o"),
        ProductLineage("debian", "debian", ("7.0", "8.0"), "os", "o"),
        ProductLineage("apple", "mac_os_x", ("10.5", "10.9"), "os", "o"),
        ProductLineage("suse", "opensuse", ("12.3", "13.2"), "os", "o"),
        ProductLineage("redhat", "fedora", ("20", "23"), "os", "o"),
        ProductLineage("microsoft", "internet_explorer", ("8", "10", "11"), "browser"),
        ProductLineage("microsoft", "edge", ("1",), "browser"),
        ProductLineage("google", "chrome", ("45", "50"), "browser"),
        ProductLineage("mozilla", "firefox", ("40", "45"), "browser"),
        ProductLineage("mozilla", "seamonkey", ("2.0",), "browser"),
        ProductLineage("apple", "safari", ("8", "9"), "browser"),
        ProductLineage("opera", "opera_browser", ("30",), "browser"),
        ProductLineage("microsoft", "sql_server", ("2008", "2014"), "database"),
        ProductLineage("oracle", "mysql", ("5.5", "5.7"), "database"),
        ProductLineage("mariadb", "mariadb", ("10.0", "10.1"), "database"),
    )


def generate_synthetic_nvd(config: SyntheticNVDConfig) -> VulnerabilityDatabase:
    """Generate a deterministic synthetic NVD feed.

    Each CVE starts at a uniformly chosen (lineage, version) *seat* and
    spreads to other products with the configured probabilities.  Version
    spread within a lineage decays geometrically with version distance,
    reproducing the adjacent-version structure of the paper's Table II.
    """
    rng = random.Random(config.seed)
    database = VulnerabilityDatabase()
    start, end = config.years
    serial = 1
    for year in range(start, end + 1):
        for _ in range(config.cves_per_year):
            record = _generate_record(config, rng, year, serial)
            database.add(record)
            serial += 1
    return database


def _generate_record(
    config: SyntheticNVDConfig,
    rng: random.Random,
    year: int,
    serial: int,
) -> CVERecord:
    lineage = rng.choice(list(config.lineages))
    seat = rng.randrange(len(lineage.versions))
    affected: List[CPE] = [lineage.cpe_for(lineage.versions[seat])]

    # Spread to other versions of the same lineage, decaying with distance.
    for offset, version in enumerate(lineage.versions):
        if offset == seat:
            continue
        distance = abs(offset - seat)
        if rng.random() < config.p_adjacent_version ** distance:
            affected.append(lineage.cpe_for(version))

    # Spread to sibling and rival lineages.
    for other in config.lineages:
        if other is lineage:
            continue
        if other.vendor == lineage.vendor:
            probability = config.p_same_vendor
        elif other.category == lineage.category:
            probability = config.p_cross_vendor
        else:
            continue
        if rng.random() < probability:
            affected.append(other.cpe_for(rng.choice(list(other.versions))))

    cvss = round(rng.uniform(2.0, 10.0), 1)
    return CVERecord.build(
        year=year,
        serial=serial,
        affected=affected,
        cvss=cvss,
        description=f"synthetic vulnerability {serial} seated at {affected[0]}",
    )


def product_cpe_map(config: SyntheticNVDConfig) -> Dict[str, CPE]:
    """Human-readable name → CPE query for every product in the universe.

    Names look like ``"microsoft windows_7"``; they are the keys usable with
    :func:`repro.nvd.similarity.similarity_table_from_database`.
    """
    mapping: Dict[str, CPE] = {}
    for lineage in config.lineages:
        for version in lineage.versions:
            cpe = lineage.cpe_for(version)
            mapping[f"{cpe.vendor} {cpe.product}"] = cpe
    return mapping
