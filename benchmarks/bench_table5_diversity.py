"""Paper Table V — the network diversity metric d_bn.

Regenerates the five-row table (α̂, α̂_C1, α̂_C2, α_r, α_m) for entry c4 and
target t5 and asserts the paper's ordering.  The benchmark times the full
driver: three optimisations + BN inference for every assignment.

Paper values for comparison: 0.81457 / 0.48590 / 0.48119 / 0.26622 /
0.06709.  Our absolute values are lower (the undiversifiable legacy OT zone
weighs more under our documented rate calibration — see EXPERIMENTS.md),
but the ordering and the relative gaps reproduce.
"""

from repro.experiments import table5_diversity

PAPER_VALUES = {
    "optimal": 0.81457,
    "host_constrained": 0.48590,
    "product_constrained": 0.48119,
    "random": 0.26622,
    "mono": 0.06709,
}


def test_table5_benchmark(benchmark, case, write_artifact):
    reports = benchmark.pedantic(
        table5_diversity, args=(case,), rounds=2, iterations=1
    )

    assert reports["optimal"].d_bn > reports["host_constrained"].d_bn
    assert reports["host_constrained"].d_bn >= reports["product_constrained"].d_bn - 1e-9
    assert reports["product_constrained"].d_bn > reports["random"].d_bn
    assert reports["random"].d_bn > reports["mono"].d_bn

    lines = ["Table V — diversity metric d_bn (entry c4, target t5)",
             f"{'assignment':<20}{'ours':>10}{'paper':>10}"]
    for label, report in reports.items():
        lines.append(f"{label:<20}{report.d_bn:>10.5f}{PAPER_VALUES[label]:>10.5f}")
    lines.append("")
    lines += ["  " + r.row(label) for label, r in reports.items()]
    write_artifact("table5_diversity", "\n".join(lines))
