"""Native kernel tier — compiled TRW-S sweep kernels vs the NumPy backend.

Pins the headline claim of the kernel-backend tier (``docs/kernels.md``):
on the 10k-host scalability workload (50 000 nodes, ~200 000 edges, 4
labels) the ``native`` backend runs one TRW-S iteration — forward sweep +
backward sweep + dual bound — at least **5×** faster than the ``numpy``
backend, while remaining bit-for-bit identical (labels, energy, bound,
traces and the post-solve message state are asserted equal, not close).

Timing protocol: interleaved best-of-``ROUNDS``.  Each round solves
``ITERATIONS`` TRW-S iterations per backend, alternating backends inside
the round so machine noise (the CI boxes are small and shared) hits both
equally; the metric is per-iteration *sweep* seconds — the ``forward`` +
``backward`` + ``bound`` phases from :class:`~repro.mrf.solvers.SolveStats`
— excluding decode/energy bookkeeping, which is backend-independent.  The
per-phase attribution of the winning native round lands in the BENCH
record (schema 2 ``phases``), and the committed baseline lives in
``benchmarks/pinned/BENCH_native_kernels.json`` (``bench_report.py
--pinned`` gates on it).
"""

import numpy as np
import pytest

from repro import obs
from repro.core.compile import compile_plan
from repro.mrf.backends import get_backend
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import SolverScratch
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)

#: The 10k-host scalability workload (paper Table 7 scale).
CONFIG = RandomNetworkConfig(
    hosts=10_000, degree=8, services=5, products_per_service=4, seed=0
)
ROUNDS = 5
ITERATIONS = 3
#: Acceptance bar for the compiled tier at this scale.
MIN_SPEEDUP = 5.0

NATIVE = get_backend("native")

pytestmark = pytest.mark.skipif(
    not NATIVE.available,
    reason="native backend needs Numba or a C compiler",
)


def _timed_solve(plan, backend, scratch, messages):
    """One traced solve; returns (result, per-iteration sweep seconds)."""
    solver = TRWSSolver(
        max_iterations=ITERATIONS, refine=False, backend=backend, seed=0
    )
    assert not obs.enabled(), "ambient trace active; bench must start clean"
    obs.activate(obs.Trace())
    try:
        result = solver.solve_arrays(plan, messages=messages, scratch=scratch)
    finally:
        obs.deactivate()
    stats = result.stats
    sweep = stats.forward_seconds + stats.backward_seconds + stats.bound_seconds
    return result, sweep / result.iterations


def test_native_sweep_speedup(record_bench):
    network = random_network(CONFIG)
    similarity = random_similarity(CONFIG)
    plan = compile_plan(network, similarity).plan
    scratch = {name: SolverScratch() for name in ("numpy", "native")}

    # Warm both paths once (compiled-kernel load, scratch growth) so the
    # timed rounds measure steady-state sweeps only.
    baseline, _ = _timed_solve(
        plan, "numpy", scratch["numpy"], plan.zero_messages()
    )
    native_result, _ = _timed_solve(
        plan, "native", scratch["native"], plan.zero_messages()
    )

    # Bit-for-bit parity at scale: the whole result and the post-solve
    # message state, not approximate agreement.
    assert native_result.labels == baseline.labels
    assert native_result.energy == baseline.energy
    assert native_result.lower_bound == baseline.lower_bound
    assert native_result.energy_trace == baseline.energy_trace
    assert native_result.bound_trace == baseline.bound_trace
    reference_messages = plan.zero_messages()
    messages = plan.zero_messages()
    TRWSSolver(max_iterations=2, refine=False, backend="numpy", seed=0) \
        .solve_arrays(plan, messages=reference_messages)
    TRWSSolver(max_iterations=2, refine=False, backend="native", seed=0) \
        .solve_arrays(plan, messages=messages)
    np.testing.assert_array_equal(messages, reference_messages)

    best = {"numpy": float("inf"), "native": float("inf")}
    best_stats = {}
    for _ in range(ROUNDS):
        for name in ("numpy", "native"):
            result, per_iteration = _timed_solve(
                plan, name, scratch[name], plan.zero_messages()
            )
            if per_iteration < best[name]:
                best[name] = per_iteration
                best_stats[name] = result.stats

    speedup = best["numpy"] / best["native"]
    record_bench(
        "native_kernels",
        seconds=best["native"],
        phases=best_stats["native"].phase_seconds(),
        numpy_seconds=round(best["numpy"], 6),
        speedup=round(speedup, 2),
        backend=NATIVE.describe(),
        hosts=CONFIG.hosts,
        nodes=plan.node_count,
        edges=plan.edge_count,
        iterations=ITERATIONS,
        rounds=ROUNDS,
        energy=round(native_result.energy, 6),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"native kernels only {speedup:.1f}x faster than numpy "
        f"({best['native'] * 1e3:.1f} ms vs {best['numpy'] * 1e3:.1f} ms "
        f"per iteration)"
    )
