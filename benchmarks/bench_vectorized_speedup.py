"""Vectorization speedup — vectorized TRW-S/BP vs the per-node reference.

Pins the headline claim of the vectorized message-passing core: on the
solver-ablation random workload (120 hosts, degree 8, 3 services, general
MRF path) the vectorized :class:`~repro.mrf.trws.TRWSSolver` returns the
same energy, bound and labelling as the pre-vectorization
:class:`~repro.mrf.reference.ReferenceTRWSSolver` at **at least 5×** the
speed.  The measured ratio (typically well above the bar) is recorded in
``benchmarks/results/BENCH_vectorized_trws.json`` so regressions show up
as a trend, not an anecdote.

Timing protocol: best of ``ROUNDS`` runs per solver on a prebuilt MRF
(solver time only — MRF construction is shared by both and measured by the
scalability benches).
"""

import time

import pytest

from repro.core.costs import build_mrf
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.reference import ReferenceBPSolver, ReferenceTRWSSolver
from repro.mrf.trws import TRWSSolver
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)

ROUNDS = 3
#: The bench_ablation_solvers.py random workload.
CONFIG = RandomNetworkConfig(hosts=120, degree=8, services=3, seed=1)


def _best_of(solver, mrf, rounds=ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = solver.solve(mrf)
        best = min(best, time.perf_counter() - start)
    return result, best


def test_trws_vectorized_speedup(record_bench):
    build = build_mrf(random_network(CONFIG), random_similarity(CONFIG))
    fast, fast_seconds = _best_of(TRWSSolver(max_iterations=60), build.mrf)
    slow, slow_seconds = _best_of(ReferenceTRWSSolver(max_iterations=60), build.mrf)

    assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
    assert fast.lower_bound == pytest.approx(slow.lower_bound, abs=1e-7)
    # Labellings must be equally good; bit-identical label lists are not
    # guaranteed (belief sums accumulate in level-major vs node order).
    assert build.mrf.energy(fast.labels) == pytest.approx(
        build.mrf.energy(slow.labels), abs=1e-9
    )

    speedup = slow_seconds / fast_seconds
    record_bench(
        "vectorized_trws",
        seconds=fast_seconds,
        reference_seconds=round(slow_seconds, 6),
        speedup=round(speedup, 2),
        hosts=CONFIG.hosts,
        degree=CONFIG.degree,
        services=CONFIG.services,
        energy=round(fast.energy, 6),
    )
    # The acceptance bar for the vectorized core.
    assert speedup >= 5.0, f"vectorized TRW-S only {speedup:.1f}x faster"


def test_bp_vectorized_speedup(record_bench):
    build = build_mrf(random_network(CONFIG), random_similarity(CONFIG))
    fast, fast_seconds = _best_of(LoopyBPSolver(max_iterations=60), build.mrf)
    slow, slow_seconds = _best_of(ReferenceBPSolver(max_iterations=60), build.mrf)

    assert fast.labels == slow.labels
    assert fast.energy == pytest.approx(slow.energy, abs=1e-9)

    speedup = slow_seconds / fast_seconds
    record_bench(
        "vectorized_bp",
        seconds=fast_seconds,
        reference_seconds=round(slow_seconds, 6),
        speedup=round(speedup, 2),
        hosts=CONFIG.hosts,
        degree=CONFIG.degree,
        services=CONFIG.services,
        energy=round(fast.energy, 6),
    )
    # BP's rounds are one block operation; anything below 2x is a regression.
    assert speedup >= 2.0, f"vectorized BP only {speedup:.1f}x faster"
