"""Ablation — upgrade budget (diminishing returns of partial diversification).

The paper's advisory use case implies a practical question it leaves open:
how much of the optimal diversification's benefit can an operator buy with
only k changes?  This bench computes the greedy upgrade frontier from the
mono-culture deployment of the case study and reports the energy (and the
fraction of the full greedy gain) per budget.

Shape asserted: the frontier is monotone non-increasing, gains diminish
(the first change gains at least as much as the tenth), and a handful of
changes — fewer than a third of the diversifiable installations — already
captures half of the achievable gain.
"""

from repro.core.baselines import mono_assignment
from repro.core.planner import upgrade_frontier

MAX_BUDGET = 30


def test_budget_ablation(benchmark, case, write_artifact):
    current = mono_assignment(case.network)

    frontier = benchmark.pedantic(
        upgrade_frontier,
        args=(case.network, case.similarity, current, MAX_BUDGET),
        rounds=1,
        iterations=1,
    )

    values = [frontier[k] for k in sorted(frontier)]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    full_gain = frontier[0] - frontier[MAX_BUDGET]
    assert full_gain > 0
    gains = [frontier[k] - frontier[k + 1] for k in range(MAX_BUDGET)]
    assert gains[0] >= gains[9] - 1e-9

    # Half the gain within a third of the diversifiable installations.
    half_budget = next(
        k for k in range(MAX_BUDGET + 1)
        if frontier[0] - frontier[k] >= 0.5 * full_gain
    )
    assert half_budget <= case.network.variable_count() // 3

    lines = ["Ablation — upgrade budget (greedy frontier from mono-culture)",
             f"{'budget':>8}{'energy':>12}{'gain captured':>16}"]
    for k in sorted(frontier):
        captured = (frontier[0] - frontier[k]) / full_gain if full_gain else 0.0
        lines.append(f"{k:>8}{frontier[k]:>12.3f}{100 * captured:>15.1f}%")
    lines.append(f"half of the gain within {half_budget} change(s)")
    write_artifact("ablation_budget", "\n".join(lines))
