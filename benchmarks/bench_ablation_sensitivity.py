"""Ablation — robustness of the reproduced conclusions.

Two sensitivity sweeps backing the claims in EXPERIMENTS.md:

* the Table V diversity ordering holds across a grid of infection-rate
  calibrations around the default (the paper's calibration is
  unpublished, so the shape must not hinge on our choice);
* the optimal assignment degrades gracefully under similarity measurement
  error (the paper's NVD publication-bias concern): with ±10 % noise the
  re-optimised assignment agrees with the original on most installations
  and the original's regret stays small.
"""

from repro.analysis.sensitivity import (
    calibration_sensitivity,
    similarity_perturbation_sensitivity,
)


def test_calibration_grid(benchmark, case, write_artifact):
    cells = benchmark.pedantic(
        calibration_sensitivity,
        kwargs=dict(case=case, p_avgs=(0.05, 0.1, 0.15), p_maxs=(0.2, 0.3, 0.4)),
        rounds=1,
        iterations=1,
    )
    assert all(cell.optimal_wins for cell in cells)
    full = sum(cell.ordering_holds for cell in cells)
    assert full >= len(cells) * 2 // 3

    lines = [
        "Ablation — Table V ordering across infection-rate calibrations",
        f"full ordering holds at {full}/{len(cells)} grid points; "
        f"'optimal wins' at {len(cells)}/{len(cells)}",
    ]
    lines += ["  " + cell.row() for cell in cells]
    write_artifact("ablation_sensitivity_calibration", "\n".join(lines))


def test_similarity_perturbation(benchmark, case, write_artifact):
    results = benchmark.pedantic(
        similarity_perturbation_sensitivity,
        args=(case.network, case.similarity),
        kwargs=dict(noise_levels=(0.1, 0.3), seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )

    low_noise = [r for r in results if r.noise == 0.1]
    assert min(r.agreement for r in low_noise) >= 0.6
    assert max(r.regret for r in results) <= 0.5

    lines = ["Ablation — optimal-assignment stability under similarity noise"]
    lines += ["  " + result.row() for result in results]
    write_artifact("ablation_sensitivity_similarity", "\n".join(lines))
