"""Paper Table III — web-browser vulnerability-similarity table.

Same protocol as the Table II bench: exact reproduction from the embedded
published data, plus the synthetic-feed pipeline timed with
pytest-benchmark.
"""

import pytest

from repro.nvd.datasets import (
    CHROME,
    FIREFOX,
    IE8,
    IE10,
    SEAMONKEY,
    paper_browser_similarity,
)
from repro.nvd.generator import (
    SyntheticNVDConfig,
    generate_synthetic_nvd,
    product_cpe_map,
)
from repro.nvd.similarity import similarity_table_from_database


@pytest.fixture(scope="module")
def feed():
    config = SyntheticNVDConfig(seed=7, cves_per_year=200)
    return config, generate_synthetic_nvd(config)


def test_published_table_regenerated(benchmark, write_artifact):
    table = benchmark(paper_browser_similarity)
    assert table.get(IE8, IE10) == pytest.approx(0.386)
    assert table.get(FIREFOX, SEAMONKEY) == pytest.approx(0.450)
    assert table.get(CHROME, FIREFOX) == pytest.approx(0.005)
    write_artifact("table3_browser_similarity", table.format_table())


def test_table3_pipeline_benchmark(benchmark, feed, write_artifact):
    config, database = feed
    browsers = {
        name: cpe
        for name, cpe in product_cpe_map(config).items()
        if any(
            key in cpe.product
            for key in ("explorer", "edge", "chrome", "firefox", "safari",
                        "seamonkey", "opera")
        )
    }

    table = benchmark(
        similarity_table_from_database, database, browsers, 1999, 2016
    )

    same_vendor = table.get(
        "microsoft internet_explorer_8", "microsoft internet_explorer_10"
    )
    rivals = table.get("google chrome_50", "mozilla firefox_45")
    assert same_vendor > rivals
    write_artifact("table3_browser_similarity_synthetic", table.format_table())
