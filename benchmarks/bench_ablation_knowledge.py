"""Ablation — attacker knowledge (the paper's stated future work).

Section IX proposes evaluating the diversified network "from an
adversarial perspective, subject to different level of attacker's
knowledge about the network configuration".  This bench runs the
full/noisy/blind knowledge sweep against the optimal and mono-culture
assignments of the case study (entry c4 → target t5).

Shape asserted:

* full knowledge is never slower than any other level on either network
  (with expected-time planning, reconnaissance can only help);
* at *every* knowledge level the diversified network costs the attacker at
  least as much as the mono-culture — diversity is robust to the
  adversary's information, not just to the fully-informed adversary.

The artifact additionally reports each network's "price of ignorance"
(worst-level / full-level expected ticks) for inspection; its relative
size across networks depends on where the noise happens to route the
attacker, so it is reported, not asserted.
"""


from repro.adversary.evaluate import knowledge_sweep
from repro.core.baselines import mono_assignment
from repro.core.diversify import diversify

NOISE_LEVELS = (0.1, 0.3)


def test_knowledge_ablation(benchmark, case, write_artifact):
    optimal = diversify(case.network, case.similarity).assignment
    mono = mono_assignment(case.network)

    def run():
        return {
            "optimal": knowledge_sweep(
                case.network, optimal, case.similarity, "c4", case.target,
                noise_levels=NOISE_LEVELS, runs=400, seed=7,
            ),
            "mono": knowledge_sweep(
                case.network, mono, case.similarity, "c4", case.target,
                noise_levels=NOISE_LEVELS, runs=400, seed=7,
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    for label, sweep in sweeps.items():
        full = sweep["full"].true_expected_ticks
        for result in sweep.values():
            assert result.true_expected_ticks >= full - 1e-9, label

    # Diversification dominates mono-culture at every knowledge level.
    for level in sweeps["optimal"]:
        assert (
            sweeps["optimal"][level].true_expected_ticks
            >= sweeps["mono"][level].true_expected_ticks - 1e-9
        ), level

    # Relative price of ignorance: worst-level E[ticks] / full-level.
    def ignorance_price(sweep):
        worst = max(r.true_expected_ticks for r in sweep.values())
        return worst / sweep["full"].true_expected_ticks

    lines = ["Ablation — attacker knowledge (entry c4 → target t5)"]
    for label, sweep in sweeps.items():
        lines.append(f"--- {label} assignment "
                     f"(price of ignorance {ignorance_price(sweep):.2f}x)")
        for result in sweep.values():
            lines.append("  " + result.row())
    write_artifact("ablation_knowledge", "\n".join(lines))
