"""Paper Fig. 1 — the motivational example.

The three panels' target-compromise probabilities must reproduce exactly:
0 for diversified hosts with no shared vulnerabilities, 0.125 with
similarity 0.5, and 0.5 once the multi-label square exploit is available.
"""

import pytest

from repro.experiments import fig1_motivational


def test_fig1_benchmark(benchmark, write_artifact):
    results = benchmark(fig1_motivational)

    assert results["a"] == pytest.approx(0.0)
    assert results["b"] == pytest.approx(0.125)
    assert results["c"] == pytest.approx(0.5)

    lines = ["Fig. 1 — P(target compromised)  [paper: 0, ~0.125, ~0.5]"]
    lines += [f"  panel ({panel}): {p:.4f}" for panel, p in results.items()]
    write_artifact("fig1_motivational", "\n".join(lines))
