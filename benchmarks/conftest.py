"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artefact of the paper (a table or figure)
and, besides the pytest-benchmark timing, writes the rendered rows to
``benchmarks/results/<name>.txt`` so the reproduction's numbers are
inspectable after a run.

Timing records additionally land in ``benchmarks/results/BENCH_<name>.json``
via the :func:`record_bench` fixture — one small machine-readable file per
benchmark, with a stable schema, so the performance trajectory of the hot
paths can be tracked across commits (diff the JSON, plot the series) rather
than eyeballed out of pytest-benchmark's console table.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.casestudy.stuxnet import stuxnet_case_study

RESULTS_DIR = Path(__file__).parent / "results"

#: Schema version of the BENCH_*.json records; bump on breaking changes.
#: v2 adds the optional top-level ``phases`` mapping (per-phase seconds
#: attribution, e.g. from ``repro.obs.report.layer_seconds``); v1 records
#: remain readable — ``phases`` is simply absent.
BENCH_SCHEMA = 2


@pytest.fixture(scope="session")
def case():
    """The Stuxnet case-study bundle (built once per session)."""
    return stuxnet_case_study()


@pytest.fixture(scope="session")
def write_artifact():
    """Writer: ``write_artifact("table5", text)`` → benchmarks/results/table5.txt."""

    def write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return write


@pytest.fixture(scope="session")
def record_bench():
    """Writer for machine-readable timing records.

    ``record_bench("vectorized_trws", seconds=1.23, hosts=120)`` →
    ``benchmarks/results/BENCH_vectorized_trws.json`` holding::

        {"schema": 2, "bench": "vectorized_trws", "seconds": 1.23,
         "python": "3.11.7", "created_unix": 1690000000,
         "extra": {"hosts": 120}}

    ``seconds`` is the headline number trend tooling should chart; every
    additional keyword lands under ``extra`` for context (per-cell splits,
    workload parameters, speedup ratios).  The ``phases`` keyword is
    special: a ``{phase: seconds}`` mapping (e.g. from
    :func:`repro.obs.report.layer_seconds` or ``SolveStats.
    phase_seconds``) recorded top-level as the per-phase attribution of
    the headline number — ``benchmarks/bench_report.py`` renders it.
    """

    def record(
        name: str,
        seconds: float,
        phases: Optional[Dict[str, float]] = None,
        **extra,
    ) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"BENCH_{name}.json"
        payload = {
            "schema": BENCH_SCHEMA,
            "bench": name,
            "seconds": round(float(seconds), 6),
            "python": platform.python_version(),
            "created_unix": int(time.time()),
            "extra": extra,
        }
        if phases:
            payload["phases"] = {
                phase: round(float(value), 6)
                for phase, value in phases.items()
            }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return record
