"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artefact of the paper (a table or figure)
and, besides the pytest-benchmark timing, writes the rendered rows to
``benchmarks/results/<name>.txt`` so the reproduction's numbers are
inspectable after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.casestudy.stuxnet import stuxnet_case_study

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def case():
    """The Stuxnet case-study bundle (built once per session)."""
    return stuxnet_case_study()


@pytest.fixture(scope="session")
def write_artifact():
    """Writer: ``write_artifact("table5", text)`` → benchmarks/results/table5.txt."""

    def write(name: str, text: str) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return write
