"""Ablation — solver choice (the paper's Section V-C design decision).

The paper argues for TRW-S over belief propagation and graph cuts: BP
"might not converge" on many instances and TRW-S handles flat-probability
labelling better.  This bench compares TRW-S against loopy BP, ICM and the
greedy colouring heuristic on the case-study MRF and on a random workload:
achieved energy (solution quality) and wall time.  The pre-vectorization
reference solvers (``trws-ref``/``bp-ref``) run on the same instances, so
the artefact also tracks the vectorization speedup and asserts energy
parity between each solver and its reference.

Asserted shape: TRW-S never loses on energy.
"""

import time

import pytest

from repro.core.baselines import greedy_assignment
from repro.core.costs import assignment_energy
from repro.core.diversify import diversify
from repro.network.generator import RandomNetworkConfig, random_network, random_similarity

SOLVERS = ("trws", "trws-ref", "bp", "bp-ref", "icm")

_case_rows = {}
_random_rows = {}
_case_seconds = {}
_random_seconds = {}


def _timed_diversify(network, similarity, **kwargs):
    start = time.perf_counter()
    result = diversify(network, similarity, **kwargs)
    return result, time.perf_counter() - start


@pytest.mark.parametrize("solver", SOLVERS)
def test_case_study_solver(benchmark, case, solver):
    result, seconds = benchmark.pedantic(
        _timed_diversify,
        args=(case.network, case.similarity),
        kwargs=dict(solver=solver, max_iterations=100),
        rounds=1,
        iterations=1,
    )
    _case_rows[solver] = result.energy
    _case_seconds[solver] = seconds


@pytest.mark.parametrize("solver", SOLVERS)
def test_random_workload_solver(benchmark, solver):
    config = RandomNetworkConfig(hosts=120, degree=8, services=3, seed=1)
    network, similarity = random_network(config), random_similarity(config)
    result, seconds = benchmark.pedantic(
        _timed_diversify,
        args=(network, similarity),
        kwargs=dict(solver=solver, max_iterations=60, fast_path=False),
        rounds=1,
        iterations=1,
    )
    _random_rows[solver] = result.energy
    _random_seconds[solver] = seconds


def test_solver_ablation_shape(benchmark, case, write_artifact, record_bench):
    if set(_case_rows) != set(SOLVERS) or set(_random_rows) != set(SOLVERS):
        pytest.skip("solver cells did not run (collection filter?)")
    greedy = benchmark(greedy_assignment, case.network, case.similarity)
    greedy_energy = assignment_energy(case.network, case.similarity, greedy)
    # TRW-S is the best (or tied-best) optimiser on both instances.
    assert _case_rows["trws"] <= min(_case_rows.values()) + 1e-9
    assert _case_rows["trws"] <= greedy_energy
    assert _random_rows["trws"] <= min(_random_rows.values()) + 1e-9
    # Vectorized solvers match their per-node reference implementations.
    assert _case_rows["trws"] == pytest.approx(_case_rows["trws-ref"], abs=1e-9)
    assert _random_rows["trws"] == pytest.approx(_random_rows["trws-ref"], abs=1e-9)
    assert _case_rows["bp"] == pytest.approx(_case_rows["bp-ref"], abs=1e-9)
    assert _random_rows["bp"] == pytest.approx(_random_rows["bp-ref"], abs=1e-9)

    lines = ["Ablation — solver choice (energy; lower is better)",
             f"{'solver':<10}{'case study':>14}{'random 120-host':>18}{'random time':>14}"]
    for solver in SOLVERS:
        lines.append(
            f"{solver:<10}{_case_rows[solver]:>14.3f}{_random_rows[solver]:>18.3f}"
            f"{_random_seconds[solver]:>13.3f}s"
        )
    lines.append(f"{'greedy':<10}{greedy_energy:>14.3f}{'—':>18}{'—':>14}")
    write_artifact("ablation_solvers", "\n".join(lines))
    record_bench(
        "ablation_solvers",
        seconds=_random_seconds["trws"],
        case_seconds={k: round(v, 6) for k, v in _case_seconds.items()},
        random_seconds={k: round(v, 6) for k, v in _random_seconds.items()},
        case_energy={k: round(v, 6) for k, v in _case_rows.items()},
        random_energy={k: round(v, 6) for k, v in _random_rows.items()},
    )
