"""Shard scaling — component-partitioned solves vs the monolithic solver.

Pins the headline claim of the shard layer (:mod:`repro.mrf.partition` +
:class:`~repro.mrf.sharded.ShardedSolver`): on a segmented 1000-host
multi-zone workload the fully sharded solve is at least **2×** faster than
the monolithic :class:`~repro.mrf.trws.TRWSSolver` while producing
**identical energies** at every shard granularity (components share no
edges, so the decomposition is exact).

The workload models a segmented ICS estate (cf. the paper's Fig. 3): one
*core* zone with redundant (loopy) wiring, four daisy-chained field
segments and five tree-shaped office LANs — 1000 hosts, two services, six
candidate products, air-gapped zones.  The structure is what the speedup
exploits and what makes it honest:

* the loopy core denies the monolithic solver its forest dispatch, so it
  message-passes the *whole* network for as many sweeps as its slowest
  component needs, over a wavefront schedule whose depth is gated by the
  daisy chains;
* per shard, the chains and trees are forests — solved exactly by one
  min-sum DP pass — and only the small core pays iterative sweeps.

Timings are best-of-``ROUNDS``; the 1 → N shard series lands in
``benchmarks/results/BENCH_shard_scaling.json`` (CI runs this on every
push and the pinned-record soft gate flags >25% regressions).
"""

import random
import time

import pytest

from repro.core.costs import build_mrf
from repro.mrf.partition import split_components
from repro.mrf.sharded import ShardedSolver
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays
from repro.network.zones import Zone, ZonedNetwork
from repro.nvd.similarity import SimilarityTable

ROUNDS = 3
SEED = 1
PRODUCTS = 6
#: Shard-count targets of the scaling series (None = natural components).
SHARD_TARGETS = (1, 2, 4, None)
#: The acceptance bar: fully sharded vs monolithic wall-clock.
MIN_SPEEDUP = 2.0


def build_zoned_workload(seed: int = SEED):
    """The segmented 1000-host estate: core + field chains + office LANs."""
    rng = random.Random(seed)
    zones = []
    # One operations core with redundant (loopy) wiring.
    hosts = tuple(f"core_h{i}" for i in range(60))
    links = {
        tuple(sorted((hosts[i], hosts[rng.randrange(i)])))
        for i in range(1, 60)
    }
    while len(links) < 60 * 3 // 2:
        a, b = rng.sample(hosts, 2)
        links.add((a, b) if a < b else (b, a))
    zones.append(Zone("core", hosts, topology="custom",
                      links=tuple(sorted(links))))
    # Four daisy-chained field segments (fieldbus-style wiring).
    for k in range(4):
        zones.append(
            Zone(f"field{k}", tuple(f"f{k}h{i}" for i in range(120)),
                 topology="chain")
        )
    # Five tree-shaped office LANs (hosts hang off switches).
    for k in range(5):
        lan = tuple(f"lan{k}h{i}" for i in range(92))
        tree = tuple(sorted(
            (lan[rng.randrange(i)], lan[i]) for i in range(1, 92)
        ))
        zones.append(Zone(f"lan{k}", lan, topology="custom", links=tree))
    zoned = ZonedNetwork(zones, rules=[])  # air-gapped: no cross-zone rules

    spec = {s: tuple(f"{s}_p{j}" for j in range(PRODUCTS))
            for s in ("os", "db")}
    network = zoned.build_network({h: spec for h in zoned.hosts()})
    table = SimilarityTable()
    feed = random.Random(seed + 1)
    for products in spec.values():
        for product in products:
            table.add_product(product)
        for i, a in enumerate(products):
            for b in products[i + 1 :]:
                if feed.random() < 0.3:
                    table.set(a, b, round(feed.uniform(0.05, 0.8), 3))
    return network, table


def _best(fn, rounds=ROUNDS):
    result, best = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_shard_scaling_speedup(record_bench, write_artifact):
    network, table = build_zoned_workload()
    assert len(network) == 1000
    mrf = build_mrf(network, table).mrf
    plan = MRFArrays(mrf)

    mono, mono_seconds = _best(lambda: TRWSSolver().solve(mrf))

    rows = [
        f"monolithic trws: {1000 * mono_seconds:8.1f}ms  "
        f"E={mono.energy:.4f}  iters={mono.iterations}"
    ]
    series = {}
    full_speedup = None
    for target in SHARD_TARGETS:
        if target is None:
            min_nodes = 1
        else:
            min_nodes = max(1, -(-plan.node_count // target))
        solver = ShardedSolver(solver="trws", workers=-1,
                               min_shard_nodes=min_nodes)
        result, seconds = _best(lambda: solver.solve_arrays(plan))
        shard_count = len(split_components(plan, min_nodes=min_nodes))
        speedup = mono_seconds / seconds
        label = str(shard_count)
        series[label] = {
            "seconds": round(seconds, 6),
            "speedup": round(speedup, 2),
        }
        rows.append(
            f"{shard_count:>3} shard(s): {1000 * seconds:8.1f}ms  "
            f"E={result.energy:.4f}  speedup={speedup:4.2f}x"
        )
        # Exactness at every granularity: components share no edges.
        assert result.energy == pytest.approx(mono.energy, abs=1e-9)
        if target is None:
            full_speedup = speedup
            full_seconds = seconds
            full_shards = shard_count

    write_artifact("shard_scaling", "\n".join(rows))
    record_bench(
        "shard_scaling",
        seconds=full_seconds,
        mono_seconds=round(mono_seconds, 6),
        speedup=round(full_speedup, 2),
        shards=full_shards,
        hosts=len(network),
        nodes=plan.node_count,
        edges=plan.edge_count,
        series=series,
        energy=round(mono.energy, 6),
    )
    # The acceptance bar for the shard layer.
    assert full_speedup >= MIN_SPEEDUP, (
        f"fully sharded solve only {full_speedup:.2f}x faster "
        f"(bar: {MIN_SPEEDUP}x)"
    )
