"""Tracing overhead — ``repro.obs`` must be free when disabled.

Pins the observability layer's core promise: with no trace activated,
every ``obs.span`` / ``obs.instant`` / ``obs.add_counter`` call site
returns a shared no-op singleton and costs nanoseconds, so instrumenting
the hot paths (compile phases, TRW-S iterations, shard solves, stream
applies) does not tax production runs.  The workload is the Table VII
mid-density sweep at **1000 hosts** (degree 20, 15 services) — the same
estate as ``bench_plan_compile.py`` — compiled and solved end-to-end.

Two measurements gate the claim:

1. A traced run counts how many events the workload actually emits, and
   a microbenchmark prices the disabled no-op call.  The provable bound
   ``events × per-call cost`` must stay under **2%** of the disabled
   solve time — deterministic, unlike differencing two noisy wall-clock
   runs.
2. The traced run's :func:`repro.obs.report.layer_seconds` breakdown is
   recorded as the v2 ``phases`` attribution of the headline number, so
   ``bench_report.py`` shows where the sweep spends its time.

Timings are best-of-``ROUNDS``; the record lands in
``benchmarks/results/BENCH_trace_overhead.json`` (CI compares it against
the pinned copy on every push).
"""

import time

from repro import obs
from repro.core.compile import compile_plan
from repro.mrf.sharded import solve_plan
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.obs.report import layer_seconds

ROUNDS = 3
HOSTS = 1000
DEGREE = 20
SERVICES = 15
SEED = 0
NOOP_CALLS = 100_000
#: The acceptance bar: disabled-mode instrumentation cost / solve time.
MAX_OVERHEAD = 0.02


def _sweep():
    """Compile + solve the 1000-host estate once; returns the solve result."""
    config = RandomNetworkConfig(
        hosts=HOSTS, degree=DEGREE, services=SERVICES, seed=SEED
    )
    network = random_network(config)
    similarity = random_similarity(config)
    plan = compile_plan(network, similarity).plan
    return solve_plan(
        plan, solver="trws", max_iterations=4, compute_bound=False
    )


def _best(fn, rounds=ROUNDS):
    result, best = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _noop_span_cost(calls=NOOP_CALLS):
    """Best-of-rounds per-call seconds of ``obs.span`` with tracing off."""
    assert not obs.enabled(), "microbench requires tracing disabled"
    span = obs.span
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for _ in range(calls):
            with span("noop", cat="bench", x=1):
                pass
        best = min(best, time.perf_counter() - start)
    return best / calls


def test_trace_overhead_disabled(record_bench, write_artifact):
    assert not obs.enabled(), "ambient trace active; bench must start clean"

    # Disabled mode: the number CI trends and the denominator of the bar.
    result, disabled_seconds = _best(_sweep)

    # Traced once: how many events does this workload emit, and where
    # does the time go (the v2 ``phases`` attribution)?
    trace = obs.activate(obs.Trace())
    try:
        traced_result, traced_seconds = _best(_sweep, rounds=1)
    finally:
        obs.deactivate()
    events = len(trace.events)
    assert events > 0, "traced sweep recorded no events"
    phases = layer_seconds(trace.events)

    # Price the disabled call sites: even if every recorded event had
    # cost a full no-op span round-trip, the total must be negligible.
    per_call = _noop_span_cost()
    noop_total = per_call * events
    overhead = noop_total / disabled_seconds

    rows = [
        f"disabled sweep (best of {ROUNDS}):  {1000 * disabled_seconds:8.1f}ms",
        f"traced sweep (1 round):        {1000 * traced_seconds:8.1f}ms "
        f"({events} events)",
        f"no-op span call:               {1e9 * per_call:8.1f}ns",
        f"provable disabled overhead:    {100 * overhead:8.4f}% "
        f"(bar: {100 * MAX_OVERHEAD:.0f}%)",
        "phases: "
        + ", ".join(f"{k} {v:.4f}s" for k, v in phases.items()),
    ]
    write_artifact("trace_overhead", "\n".join(rows))
    record_bench(
        "trace_overhead",
        seconds=disabled_seconds,
        phases=phases,
        traced_seconds=round(traced_seconds, 6),
        events=events,
        noop_span_ns=round(1e9 * per_call, 1),
        overhead_fraction=round(overhead, 6),
        hosts=HOSTS,
        energy=round(result.energy, 6),
    )
    # Parity: tracing must observe, never perturb, the solve.
    assert traced_result.labels == result.labels
    # The acceptance bar for the observability layer.
    assert overhead <= MAX_OVERHEAD, (
        f"disabled tracing costs {100 * overhead:.2f}% of the sweep "
        f"(bar: {100 * MAX_OVERHEAD:.0f}%)"
    )
