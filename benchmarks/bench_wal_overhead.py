"""WAL overhead — durability must not tax the ingest path.

Pins the write-ahead log's core promise: under the default ``batch``
fsync policy, the *extra* work the service does per event batch — one
``WriteAheadLog.append`` at acknowledgement time plus one ``sync()``
before the batch mutates engine state — stays a small fraction of the
work it already does (apply + warm re-solve).

The measurement is deterministic rather than a race of two noisy
end-to-end daemons: the baseline times the offline ingest work (the
engine applying and solving the same trace in the same batch sizes), and
the WAL number times exactly the added calls — every batch appended and
synced against a real on-disk log, segments rotating as configured.
Both are best-of-``ROUNDS`` and interleaved, so machine noise hits both
sides alike.  The bar: **WAL work ≤ 10% of ingest work**.  The always-
policy append cost is recorded for context (it buys zero acked loss on
power failure and is priced accordingly), but only ``batch`` is gated —
it is the default the service ships with.

The record lands in ``benchmarks/results/BENCH_wal_overhead.json``; CI
compares against the pinned copy on every push.
"""

import tempfile
import time
from pathlib import Path

from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.service import WriteAheadLog
from repro.stream import ChurnConfig, DynamicDiversifier, random_churn_trace

ROUNDS = 3
HOSTS = 120
EVENTS = 60
BATCH = 8
SEED = 1
#: The acceptance bar: WAL append+sync time / baseline ingest time.
MAX_OVERHEAD = 0.10

CONFIG = RandomNetworkConfig(
    hosts=HOSTS, degree=3, services=3, products_per_service=6,
    similarity_density=0.3, seed=SEED,
)


def _workload():
    network = random_network(CONFIG)
    similarity = random_similarity(CONFIG)
    trace = random_churn_trace(
        network, ChurnConfig(events=EVENTS, seed=SEED, constraint_weight=0.3)
    )
    batches = [trace[i:i + BATCH] for i in range(0, len(trace), BATCH)]
    return network, similarity, batches


def _ingest_seconds(network, similarity, batches) -> float:
    """One timed run of the baseline ingest work: apply + solve per batch."""
    engine = DynamicDiversifier(network.copy(), similarity.copy())
    engine.solve()  # the boot solve, outside the timed window
    start = time.perf_counter()
    for batch in batches:
        for event in batch:
            engine.apply(event)
        engine.solve()
    return time.perf_counter() - start


def _wal_seconds(batches, fsync: str, root: Path) -> float:
    """One timed run of the WAL work the service adds per batch."""
    wal = WriteAheadLog(root, fsync=fsync)
    start = time.perf_counter()
    for batch in batches:
        wal.append(batch)
        if fsync == "batch":
            wal.sync()
    elapsed = time.perf_counter() - start
    wal.close()
    return elapsed


def test_wal_overhead_batch_fsync(record_bench, write_artifact, tmp_path):
    network, similarity, batches = _workload()

    base_best = float("inf")
    batch_best = float("inf")
    always_best = float("inf")
    for round_index in range(ROUNDS):
        # Interleaved A/B/A: noise (thermal, scheduler) hits both sides.
        base_best = min(
            base_best, _ingest_seconds(network, similarity, batches)
        )
        with tempfile.TemporaryDirectory(dir=tmp_path) as wal_dir:
            batch_best = min(
                batch_best, _wal_seconds(batches, "batch", Path(wal_dir))
            )
        with tempfile.TemporaryDirectory(dir=tmp_path) as wal_dir:
            always_best = min(
                always_best, _wal_seconds(batches, "always", Path(wal_dir))
            )

    overhead = batch_best / base_best
    always_overhead = always_best / base_best

    rows = [
        f"baseline ingest (best of {ROUNDS}):   {1000 * base_best:8.2f}ms "
        f"({EVENTS} events, batches of {BATCH})",
        f"wal batch-fsync work:            {1000 * batch_best:8.2f}ms "
        f"({100 * overhead:.2f}% of ingest, bar {100 * MAX_OVERHEAD:.0f}%)",
        f"wal always-fsync work:           {1000 * always_best:8.2f}ms "
        f"({100 * always_overhead:.2f}% of ingest, context only)",
    ]
    write_artifact("wal_overhead", "\n".join(rows))
    record_bench(
        "wal_overhead",
        seconds=batch_best,
        base_seconds=round(base_best, 6),
        always_seconds=round(always_best, 6),
        overhead_fraction=round(overhead, 6),
        always_overhead_fraction=round(always_overhead, 6),
        hosts=HOSTS,
        events=EVENTS,
        batch=BATCH,
    )
    assert overhead <= MAX_OVERHEAD, (
        f"batch-fsync WAL work costs {100 * overhead:.2f}% of the ingest "
        f"path (bar: {100 * MAX_OVERHEAD:.0f}%)"
    )
