"""Paper Fig. 4 — optimal / host-constrained / product-constrained
assignments for the Stuxnet case study.

Times the TRW-S optimisation of the full case-study MRF (the paper's core
computation) for each constraint regime and writes the three assignments
plus the hosts that changed relative to the unconstrained optimum (the
paper's red squares).
"""

import pytest

from repro.core.diversify import diversify
from repro.network.constraints import ConstraintSet


@pytest.mark.parametrize("regime", ["optimal", "host_constrained", "product_constrained"])
def test_fig4_benchmark(benchmark, case, write_artifact, regime):
    constraints = {
        "optimal": ConstraintSet(),
        "host_constrained": case.c1,
        "product_constrained": case.c2,
    }[regime]

    result = benchmark.pedantic(
        diversify,
        args=(case.network, case.similarity),
        kwargs=dict(constraints=constraints, max_iterations=100),
        rounds=3,
        iterations=1,
    )

    assert result.assignment.is_complete()
    assert result.satisfied

    lines = [f"Fig. 4 — {regime} assignment", result.summary(), ""]
    if regime != "optimal":
        reference = diversify(case.network, case.similarity, max_iterations=100)
        changed = sorted({h for h, _ in reference.assignment.diff(result.assignment)})
        lines.append(f"hosts changed vs optimal: {', '.join(changed) or '(none)'}")
        lines.append("")
    lines.append(result.assignment.format())
    write_artifact(f"fig4_{regime}", "\n".join(lines))
