"""Ablation — the attacker-defender race and the epidemic view.

The paper motivates diversity with Stuxnet's mass prevalence (Section I)
and measures attacker effort in ticks; these two sweeps close the loop on
*why that time matters*:

* **Epidemic curves** — the mean outbreak trajectory from c4 on the
  optimal vs mono-culture assignment: diversity stretches the outbreak's
  half-time (asserted) even when the attack rate eventually saturates.
* **Detection race** — with an IDS that flags each infection attempt with
  small probability, the extra attempts diversity forces translate into a
  higher defender win-rate (asserted across detection probabilities).
"""

from repro.core.baselines import mono_assignment
from repro.core.diversify import diversify
from repro.sim.defense import race_comparison
from repro.sim.epidemic import containment_comparison
from repro.sim.malware import InfectionModel
from repro.sim.attacker import make_attacker

DETECTION_LEVELS = (0.005, 0.01, 0.02)


def test_epidemic_and_race(benchmark, case, write_artifact):
    optimal = diversify(case.network, case.similarity).assignment
    assignments = {"mono": mono_assignment(case.network), "optimal": optimal}

    def factory(assignment):
        return InfectionModel(
            similarity=case.similarity, p_avg=0.1, p_max=0.3,
            attacker=make_attacker("sophisticated"),
        )

    def run():
        curves = containment_comparison(
            case.network, assignments, factory, "c4",
            runs=150, max_ticks=80, seed=5,
        )
        races = {
            q: race_comparison(
                case.network, assignments, factory, "c4", case.target,
                detection_probability=q, runs=300, max_ticks=600, seed=5,
            )
            for q in DETECTION_LEVELS
        }
        return curves, races

    curves, races = benchmark.pedantic(run, rounds=1, iterations=1)

    # Diversity stretches the outbreak half-time by at least half again.
    assert curves["optimal"].half_time >= 1.5 * curves["mono"].half_time
    # And shifts every race towards the defender.
    for q, race in races.items():
        assert race["optimal"].attacker_wins <= race["mono"].attacker_wins + 1e-9, q
        assert race["optimal"].mean_attempts >= race["mono"].mean_attempts, q

    lines = ["Ablation — epidemic curves (entry c4, 150 runs)"]
    lines += ["  " + curve.row(label) for label, curve in curves.items()]
    lines.append("")
    lines.append("Ablation — detection race (entry c4 → target t5, 300 runs)")
    for q, race in races.items():
        lines.append(f"  detection probability {q}:")
        for label, report in race.items():
            lines.append("    " + report.row(label))
    write_artifact("ablation_detection", "\n".join(lines))
