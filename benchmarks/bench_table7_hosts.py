"""Paper Table VII — optimisation time vs network size (#hosts).

Times the full optimisation (cost build + batched TRW-S) on random
networks at the paper's two density settings: mid-density (degree 20,
15 services/host) and high-density (degree 40, 25 services/host).

The paper sweeps 100 → 6000 hosts on C++/CUDA; the default bench sweeps
100 → 1000 in pure Python.  Absolute times differ; the required shape —
runtime grows roughly linearly in the host count at fixed degree — is
asserted.  ``repro table7 --full`` extends the sweep to 6000 hosts.
"""

import pytest

from repro.experiments import scalability_cell
from repro.network.generator import RandomNetworkConfig

HOST_COUNTS = (100, 200, 400, 600, 800, 1000)
DENSITIES = {"mid": (20, 15), "high": (40, 25)}

_results = {}


@pytest.mark.parametrize("hosts", HOST_COUNTS)
@pytest.mark.parametrize("density", ["mid", "high"])
def test_table7_benchmark(benchmark, density, hosts):
    degree, services = DENSITIES[density]
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services, seed=0
    )
    cell = benchmark.pedantic(
        scalability_cell, args=(config,), rounds=1, iterations=1
    )
    assert cell.energy > 0
    _results[(density, hosts)] = cell


def test_table7_shape_and_artifact(benchmark, write_artifact, record_bench):
    if len(_results) < len(HOST_COUNTS):
        pytest.skip("benchmark cells did not run (collection filter?)")
    # Runtime must grow with host count (allowing small-n noise).
    for density in DENSITIES:
        small = _results[(density, HOST_COUNTS[0])].seconds
        large = _results[(density, HOST_COUNTS[-1])].seconds
        assert large > small
    lines = ["Table VII — optimisation time vs #hosts",
             "(paper: 0.24s→2.78s mid / 0.64s→11.0s high over 100→1000 hosts, C++/CUDA)"]
    for (density, hosts), cell in sorted(_results.items()):
        lines.append(f"  {density:<6} " + cell.row())
    benchmark(write_artifact, "table7_hosts", "\n".join(lines))
    record_bench(
        "table7_hosts",
        seconds=sum(cell.seconds for cell in _results.values()),
        cells={
            f"{density}/{hosts}": round(cell.seconds, 6)
            for (density, hosts), cell in sorted(_results.items())
        },
    )
