"""Service benchmark — sustained HTTP ingestion rate + read latency p99.

Boots a real :class:`~repro.service.app.DiversificationService` (ephemeral
port, batch_max=16) over a 120-host workload and drives it the way an
operator's integration would: one thread streams a churn trace through
``POST /events`` (chunked, honouring backpressure) while this thread
hammers snapshot reads (``GET /assignment`` alternated with what-if
``POST /energy``) for the whole drain.

Two headline numbers land in ``benchmarks/results/BENCH_service.json``:

* ``seconds`` — wall-clock to ingest-and-solve the full trace (the
  events/sec figure derives from it), and
* ``read_p99_ms`` — the 99th-percentile read latency *measured during
  ingestion*, the empirical form of the snapshot-isolation contract:
  readers answer from the immutable view and never wait for the writer.

The parity assert (final energy self-consistent via a no-op what-if) keeps
the benchmark honest — throughput with a wrong answer is not throughput.
"""

import asyncio
import threading
import time

import pytest

from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.service import DiversificationService, ServiceClient, ServiceConfig
from repro.stream import ChurnConfig, random_churn_trace

#: 120-host sparse workload, matching bench_stream_churn's scale.
CONFIG = RandomNetworkConfig(
    hosts=120, degree=3, services=3, products_per_service=6,
    similarity_density=0.3, seed=1,
)
#: Host/link churn plus a slice of operator-constraint events.
TRACE = ChurnConfig(events=60, seed=1, constraint_weight=0.2)
READS_MIN = 200


def _percentile(samples, fraction):
    ranked = sorted(samples)
    index = min(len(ranked) - 1, int(round(fraction * (len(ranked) - 1))))
    return ranked[index]


def test_service_throughput_and_read_p99(record_bench):
    network, similarity = random_network(CONFIG), random_similarity(CONFIG)
    trace = random_churn_trace(network, TRACE)
    service = DiversificationService(
        network.copy(), similarity.copy(),
        config=ServiceConfig(port=0, batch_max=16, high_water=10_000),
    )
    started = threading.Event()

    async def runner():
        await service.start()
        started.set()
        await service._stopped.wait()

    server_thread = threading.Thread(
        target=lambda: asyncio.run(runner()), daemon=True
    )
    server_thread.start()
    assert started.wait(timeout=60)
    client = ServiceClient(port=service.port, timeout=60)
    writer = ServiceClient(port=service.port, timeout=60)

    ingest_done = threading.Event()
    ingest_box = {}

    def ingest():
        begin = time.perf_counter()
        writer.send(trace, chunk=16)
        writer.wait_idle(timeout=300)
        ingest_box["seconds"] = time.perf_counter() - begin
        ingest_done.set()

    ingest_thread = threading.Thread(target=ingest, daemon=True)
    ingest_thread.start()

    # Reads under load: alternate full-assignment reads and what-if
    # evaluations until ingestion drains (and at least READS_MIN samples).
    latencies = []
    flip = False
    while not ingest_done.is_set() or len(latencies) < READS_MIN:
        begin = time.perf_counter()
        if flip:
            whatif = client.what_if({})
            assert whatif["delta"] == pytest.approx(0.0, abs=1e-9)
        else:
            client.assignment()
        latencies.append(time.perf_counter() - begin)
        flip = not flip
    ingest_thread.join(timeout=300)
    assert "seconds" in ingest_box, "ingestion never drained"

    final = client.assignment()
    assert final["events_applied"] == len(trace)

    client.shutdown()
    server_thread.join(timeout=60)
    assert not server_thread.is_alive()

    seconds = ingest_box["seconds"]
    events_per_sec = len(trace) / seconds
    read_p99_ms = _percentile(latencies, 0.99) * 1e3
    record_bench(
        "service",
        seconds=seconds,
        events=len(trace),
        events_per_sec=round(events_per_sec, 1),
        reads=len(latencies),
        read_p50_ms=round(_percentile(latencies, 0.50) * 1e3, 3),
        read_p99_ms=round(read_p99_ms, 3),
        hosts=CONFIG.hosts,
        final_energy=round(final["energy"], 6),
    )
    # Sanity bars, deliberately loose (CI machines vary): the service must
    # sustain real ingestion while answering reads in interactive time.
    assert events_per_sec >= 5.0, f"only {events_per_sec:.1f} events/sec"
    assert read_p99_ms < 1000.0, f"read p99 {read_p99_ms:.0f}ms"
