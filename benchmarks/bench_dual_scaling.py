"""Dual-decomposition scaling — edge-cut solves vs the monolithic solver.

Pins the headline claim of the distributed tier (:mod:`repro.mrf.dual`):
on a single **connected** 1000-host giant component — the shape component
sharding cannot split — the ``trws-dual`` solver running its shards on a
4-worker process pool is at least **2×** faster than the monolithic
:class:`~repro.mrf.trws.TRWSSolver`, while every answer stays inside its
own *reported, certified* duality gap of the monolithic energy
(``dual.energy − mono.energy ≤ dual.duality_gap`` holds by theorem, and
the bench asserts it anyway).

The workload models a pipeline estate: a 1000-host chain backbone with
long redundancy chords every 100 hosts.  The structure is what the
speedup exploits and what makes it honest:

* the chords make the graph loopy, denying the monolithic solver its
  forest dispatch — it message-passes the whole 1000-level wavefront for
  dozens of sweeps;
* each chord spans 150 hosts, *longer* than an 8-part block (125), so no
  cycle fits inside one shard: every cut shard is a forest and re-solves
  **exactly** (one min-sum DP pass) per subgradient round.

Seeded per-host product preferences give the unaries realistic structure
(operators rank products); the subgradient loop is capped at a fixed
round budget and reports the certified gap it reached — the bench also
holds that gap under 8% of the energy, so the speedup can never be
bought by letting solution quality collapse.

Timings are best-of-``ROUNDS``; the executor series lands in
``benchmarks/results/BENCH_dual_scaling.json`` (CI runs this on every
push and the pinned-record soft gate flags >25% regressions).
"""

import random
import time

import pytest

from repro.core.costs import build_mrf
from repro.mrf.dual import DualDecompositionSolver
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable

ROUNDS = 3
SEED = 2
HOSTS = 1000
PRODUCTS = 4
#: Chord span must exceed the 8-part block size (125) so shards stay forests.
CHORD_SPAN = 150
CHORD_EVERY = 100
PARTS = 8
#: Fixed subgradient budget: the gap the loop certifies at this budget is
#: part of the pinned record.
MAX_ROUNDS = 8
STEP_SCALE = 0.5
#: The acceptance bar: 4-worker process-pool dual vs monolithic wall-clock.
MIN_SPEEDUP = 2.0
#: Quality floor: the certified gap must stay under this fraction of the
#: dual energy (a speedup regression cannot hide behind a worse answer).
MAX_RELATIVE_GAP = 0.08


def build_pipeline_estate(seed: int = SEED):
    """One connected 1000-host chain backbone with long redundancy chords."""
    spec = {"scada": tuple(f"p{j}" for j in range(PRODUCTS))}
    network = chain_network(HOSTS, services=spec)
    for i in range(0, HOSTS - CHORD_SPAN - 10, CHORD_EVERY):
        network.add_link(f"h{i}", f"h{i + CHORD_SPAN}")

    table = SimilarityTable()
    feed = random.Random(seed)
    products = spec["scada"]
    for product in products:
        table.add_product(product)
    for i, a in enumerate(products):
        for b in products[i + 1 :]:
            table.set(a, b, round(feed.uniform(0.05, 0.8), 3))

    prefs_rng = random.Random(seed + 5)
    preferences = {
        (f"h{i}", "scada", product): round(prefs_rng.uniform(0.0, 0.3), 3)
        for i in range(HOSTS)
        for product in products
    }
    return network, table, preferences


def _best(fn, rounds=ROUNDS):
    result, best = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_dual_scaling_speedup(record_bench, write_artifact):
    network, table, preferences = build_pipeline_estate()
    assert len(network) == HOSTS
    mrf = build_mrf(network, table, preferences=preferences).mrf
    plan = MRFArrays(mrf)
    # One giant component: every node reachable — this is the shape
    # split_components cannot decompose.
    assert plan.node_count == HOSTS

    mono, mono_seconds = _best(lambda: TRWSSolver(seed=0).solve_arrays(plan))

    rows = [
        f"monolithic trws:      {1000 * mono_seconds:8.1f}ms  "
        f"E={mono.energy:.4f}  iters={mono.iterations}"
    ]
    series = {}
    executors = (("serial", None), ("threads", 4), ("processes", 4))
    for executor, workers in executors:
        kwargs = {} if workers is None else {"workers": workers}
        solver = DualDecompositionSolver(
            parts=PARTS, seed=0, executor=executor, max_rounds=MAX_ROUNDS,
            step_scale=STEP_SCALE, **kwargs,
        )
        result, seconds = _best(lambda: solver.solve_arrays(plan))
        speedup = mono_seconds / seconds
        series[executor] = {
            "seconds": round(seconds, 6),
            "speedup": round(speedup, 2),
            "workers": workers,
        }
        rows.append(
            f"dual {executor:<10} x{workers or 1}: {1000 * seconds:8.1f}ms  "
            f"E={result.energy:.4f}  gap={result.duality_gap:.4f}  "
            f"rounds={result.rounds}  speedup={speedup:4.2f}x"
        )
        # The certificate, asserted even though it holds by theorem: the
        # dual bound is global, so it brackets the monolithic answer too.
        assert result.duality_gap >= -1e-12
        assert result.lower_bound <= mono.energy + 1e-9
        assert result.energy - mono.energy <= result.duality_gap + 1e-9
        # Determinism across executors: byte-identical answers.
        assert result.energy == series.setdefault(
            "_energy", result.energy
        )
        # Quality floor: the certified gap stays small relative to the
        # energy, so the speedup is not paid for with a worse labelling.
        assert result.duality_gap <= MAX_RELATIVE_GAP * abs(result.energy)
        if executor == "processes":
            process_speedup = speedup
            process_seconds = seconds
            dual = result

    energy = series.pop("_energy")
    write_artifact("dual_scaling", "\n".join(rows))
    record_bench(
        "dual_scaling",
        seconds=process_seconds,
        mono_seconds=round(mono_seconds, 6),
        speedup=round(process_speedup, 2),
        parts=PARTS,
        workers=4,
        rounds=dual.rounds,
        duality_gap=round(dual.duality_gap, 6),
        cut_edges=dual.cut_edge_count,
        hosts=HOSTS,
        nodes=plan.node_count,
        edges=plan.edge_count,
        series=series,
        energy=round(energy, 6),
        mono_energy=round(mono.energy, 6),
    )
    # The acceptance bar for the distributed tier.
    assert process_speedup >= MIN_SPEEDUP, (
        f"4-worker process dual only {process_speedup:.2f}x faster "
        f"(bar: {MIN_SPEEDUP}x)"
    )
