"""Ablation — the cost of constraints (paper Section VII-B/C narrative).

The paper's central practical message is that real-world constraints
(legacy pins, company policy, product-combination rules) *cost diversity*:
α̂_C1 and α̂_C2 "have to sacrifice a certain amount of diversity".  This
bench quantifies that sacrifice on the case study in three currencies:
MRF energy, total edge similarity, and the d_bn diversity metric.
"""


from repro.core.diversify import diversify
from repro.metrics.diversity import diversity_metric
from repro.network.constraints import ConstraintSet


def test_constraint_cost_ablation(benchmark, case, write_artifact):
    def run():
        rows = {}
        for label, constraints in (
            ("unconstrained", ConstraintSet()),
            ("host_constraints_C1", case.c1),
            ("product_constraints_C2", case.c2),
        ):
            result = diversify(
                case.network, case.similarity, constraints=constraints,
                max_iterations=100,
            )
            report = diversity_metric(
                case.network, result.assignment, case.similarity,
                entry="c4", target=case.target,
            )
            rows[label] = (result.energy, result.similarity_total, report.d_bn)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    energy = {label: row[0] for label, row in rows.items()}
    diversity = {label: row[2] for label, row in rows.items()}
    assert energy["unconstrained"] <= energy["host_constraints_C1"]
    assert energy["unconstrained"] <= energy["product_constraints_C2"]
    assert diversity["unconstrained"] >= diversity["host_constraints_C1"]

    lines = ["Ablation — diversity sacrificed to constraints",
             f"{'regime':<26}{'energy':>10}{'sim total':>12}{'d_bn':>10}"]
    for label, (e, s, d) in rows.items():
        lines.append(f"{label:<26}{e:>10.3f}{s:>12.3f}{d:>10.5f}")
    write_artifact("ablation_constraints", "\n".join(lines))
