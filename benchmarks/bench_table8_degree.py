"""Paper Table VIII — optimisation time vs average degree.

Fixed host count (mid-scale: 1000 hosts, 15 services), degree swept
5 → 50.  The paper's observation, asserted here, is that degree has a
*milder* effect than host count: time grows sub-linearly-ish in degree
(message work is proportional to edges, but the per-node sweep overhead
is fixed), and a 10× degree increase costs far less than 10× time... the
precise paper claim is simply "the degree has less influence on the
computational time than the number of hosts".
"""

import pytest

from repro.experiments import scalability_cell
from repro.network.generator import RandomNetworkConfig

DEGREES = (5, 10, 15, 20, 25, 30, 35, 40, 45, 50)
HOSTS = 1000
SERVICES = 15

_results = {}


@pytest.mark.parametrize("degree", DEGREES)
def test_table8_benchmark(benchmark, degree):
    config = RandomNetworkConfig(
        hosts=HOSTS, degree=degree, services=SERVICES, seed=0
    )
    cell = benchmark.pedantic(
        scalability_cell, args=(config,), rounds=1, iterations=1
    )
    assert cell.edges == HOSTS * degree // 2
    _results[degree] = cell


def test_table8_shape_and_artifact(benchmark, write_artifact, record_bench):
    if len(_results) < len(DEGREES):
        pytest.skip("benchmark cells did not run (collection filter?)")
    # Growing degree costs more time overall...
    assert _results[50].seconds > _results[5].seconds
    # ...but a 10x degree increase costs less than a 10x time increase
    # (the paper's "less influence than the number of hosts").
    assert _results[50].seconds < 10 * _results[5].seconds
    lines = ["Table VIII — optimisation time vs degree (1000 hosts, 15 services)",
             "(paper mid-scale row: 0.76s at degree 5 → 6.31s at degree 50)"]
    for degree, cell in sorted(_results.items()):
        lines.append("  " + cell.row())
    benchmark(write_artifact, "table8_degree", "\n".join(lines))
    record_bench(
        "table8_degree",
        seconds=sum(cell.seconds for cell in _results.values()),
        cells={str(degree): round(cell.seconds, 6)
               for degree, cell in sorted(_results.items())},
    )
