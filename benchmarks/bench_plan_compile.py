"""Plan compilation — direct network→plan compiler vs the Python builder.

Pins the headline claim of the compile layer (:mod:`repro.core.compile`):
on the Table VII mid-density workload at **1000 hosts** (degree 20, 15
services — 15k variables, 150k coupled edges), compiling the solver plan
straight from the network is at least **5×** faster end-to-end than the
classic ``build_mrf`` → ``MRFArrays`` object pipeline, while producing a
**byte-identical** plan (same unary stack, cost stack, edge arrays,
message slots and wavefront levels) and therefore identical solve results.

Why the old path is slow: ``build_mrf`` walks hosts × links × labels in
Python into a dict-based :class:`PairwiseMRF` (one ``add_edge`` per
(link, shared-service) pair), and ``MRFArrays`` then walks every edge
again to flatten it.  The compiler interns hosts/services/ranges once and
emits the same arrays with NumPy group operations; the remaining cost is
the slot/level derivation both paths share.

Timings are best-of-``ROUNDS``; the record lands in
``benchmarks/results/BENCH_plan_compile.json`` (CI runs this on every push
and the pinned-record soft gate flags >25% regressions).
"""

import time

import numpy as np
import pytest

from repro.core.compile import compile_plan
from repro.core.costs import build_mrf
from repro.mrf.sharded import solve_plan
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)

ROUNDS = 3
HOSTS = 1000
DEGREE = 20
SERVICES = 15
SEED = 0
#: The acceptance bar: compiled vs Python end-to-end plan build.
MIN_SPEEDUP = 5.0

#: The arrays that define solver behaviour — byte-compared between paths.
PARITY_ARRAYS = (
    "label_counts", "mask", "unary", "unary_inf", "cost",
    "edge_first", "edge_second", "edge_cid",
    "slot_sender", "slot_receiver", "slot_reverse", "slot_cid",
    "gamma",
)


def _best(fn, rounds=ROUNDS):
    result, best = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_plan_compile_speedup(record_bench, write_artifact):
    config = RandomNetworkConfig(
        hosts=HOSTS, degree=DEGREE, services=SERVICES, seed=SEED
    )
    network = random_network(config)
    similarity = random_similarity(config)

    reference, python_seconds = _best(
        lambda: MRFArrays(build_mrf(network, similarity).mrf)
    )
    compiled, compile_seconds = _best(
        lambda: compile_plan(network, similarity).plan
    )
    speedup = python_seconds / compile_seconds

    # Parity: the compiler emits the same plan, byte for byte.
    for name in PARITY_ARRAYS:
        assert np.array_equal(
            getattr(reference, name), getattr(compiled, name), equal_nan=True
        ), f"plan array {name!r} differs"

    # Identical plans solve identically (same labels, same energy).
    solver_options = dict(max_iterations=4, compute_bound=False)
    via_mrf = TRWSSolver(**solver_options).solve_arrays(
        reference, extra_inits=(reference.greedy_labels(),)
    )
    via_compile = solve_plan(compiled, solver="trws", **solver_options)
    assert via_compile.labels == via_mrf.labels
    assert via_compile.energy == pytest.approx(via_mrf.energy, abs=1e-9)

    rows = [
        f"python build (build_mrf + MRFArrays): {1000 * python_seconds:8.1f}ms",
        f"direct compile (compile_plan):        {1000 * compile_seconds:8.1f}ms",
        f"speedup: {speedup:4.2f}x  "
        f"(nodes={compiled.node_count}, edges={compiled.edge_count}, "
        f"matrices={compiled.stacked})",
        f"solve energy parity: E={via_compile.energy:.6f}",
    ]
    write_artifact("plan_compile", "\n".join(rows))
    record_bench(
        "plan_compile",
        seconds=compile_seconds,
        python_seconds=round(python_seconds, 6),
        speedup=round(speedup, 2),
        hosts=HOSTS,
        nodes=compiled.node_count,
        edges=compiled.edge_count,
        matrices=compiled.stacked,
        energy=round(via_compile.energy, 6),
    )
    # The acceptance bar for the compile layer.
    assert speedup >= MIN_SPEEDUP, (
        f"direct compiler only {speedup:.2f}x faster (bar: {MIN_SPEEDUP}x)"
    )
