"""Trend report over ``BENCH_*.json`` timing records.

Every benchmark run drops a schema-versioned JSON record into
``benchmarks/results/`` (see ``benchmarks/conftest.py``); CI uploads that
directory as an artifact per commit.  This script closes the loop by
diffing two record sets and printing a regression table::

    python benchmarks/bench_report.py                       # current only
    python benchmarks/bench_report.py --baseline old_results/
    python benchmarks/bench_report.py --baseline old/ --fail-threshold 1.5
    python benchmarks/bench_report.py --pinned               # soft perf gate

``seconds`` is the headline series; a bench whose current/baseline ratio
exceeds ``--fail-threshold`` is flagged ``REGRESSED`` (and fails the run
when the threshold is set), ratios below 1 print as speedups.  Benches
present on only one side are reported as ``new``/``missing`` rather than
silently dropped.

``--pinned [DIR]`` compares against the *committed* reference records in
``benchmarks/pinned/`` (or DIR) and exits non-zero past a default 25%
regression — the soft perf gate CI runs with ``continue-on-error`` so a
slow runner warns instead of blocking a merge.  Only benches present in
the pinned set gate; extra current records just report as ``new``.

Not a pytest module — plain argparse so CI and developers call it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional

#: Record schemas this report understands (see benchmarks/conftest.py).
#: v1 records lack the optional per-phase attribution of v2 — both load.
SUPPORTED_SCHEMAS = frozenset({1, 2})

DEFAULT_RESULTS = Path(__file__).parent / "results"
DEFAULT_PINNED = Path(__file__).parent / "pinned"

#: The soft perf gate: current/pinned seconds beyond this ratio fails.
PINNED_FAIL_THRESHOLD = 1.25


def load_records(directory: Path) -> Dict[str, dict]:
    """Read all ``BENCH_*.json`` records of a directory, keyed by bench name.

    Records with an unknown schema or unreadable JSON are skipped with a
    warning on stderr rather than failing the whole report.
    """
    records: Dict[str, dict] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"warning: skipping {path.name}: {exc}", file=sys.stderr)
            continue
        if payload.get("schema") not in SUPPORTED_SCHEMAS:
            print(
                f"warning: skipping {path.name}: schema "
                f"{payload.get('schema')!r} not in "
                f"{sorted(SUPPORTED_SCHEMAS)}",
                file=sys.stderr,
            )
            continue
        if not isinstance(payload.get("bench"), str) or not isinstance(
            payload.get("seconds"), (int, float)
        ):
            print(
                f"warning: skipping {path.name}: missing bench/seconds",
                file=sys.stderr,
            )
            continue
        records[payload["bench"]] = payload
    return records


def _backend_tag(record: Optional[dict], baseline: Optional[dict] = None) -> str:
    """`` [backend]`` suffix for records that declare a kernel backend.

    Benches that time the pluggable kernel tier record the resolved
    backend (``extra.backend``, e.g. ``"native (cc)"``) so a trend diff
    across machines is interpretable — an apparent regression that is
    really a toolchain difference renders as ``[numpy -> native (cc)]``.
    Records without the field (v1, or non-kernel benches) get no suffix.
    """
    current_backend = ((record or {}).get("extra") or {}).get("backend")
    if not isinstance(current_backend, str) or not current_backend:
        return ""
    old_backend = ((baseline or {}).get("extra") or {}).get("backend")
    if isinstance(old_backend, str) and old_backend and (
        old_backend != current_backend
    ):
        return f"  [{old_backend} -> {current_backend}]"
    return f"  [{current_backend}]"


def _phase_line(record: Optional[dict], width: int) -> Optional[str]:
    """The indented per-phase attribution of a v2 record, or None.

    Pre-v2 records (and v2 records without attribution) have no
    ``phases`` mapping — they simply render without the breakdown line.
    """
    phases = (record or {}).get("phases")
    if not isinstance(phases, dict) or not phases:
        return None
    total = sum(v for v in phases.values() if isinstance(v, (int, float)))
    parts = []
    for phase, value in sorted(
        phases.items(), key=lambda item: -float(item[1])
    ):
        share = f" ({value / total:.0%})" if total > 0 else ""
        parts.append(f"{phase} {float(value):.4f}s{share}")
    return " " * width + "phases: " + ", ".join(parts)


def format_report(
    current: Dict[str, dict],
    baseline: Optional[Dict[str, dict]] = None,
    fail_threshold: Optional[float] = None,
) -> tuple:
    """Render the table; returns (text, number of regressions)."""
    names = sorted(set(current) | set(baseline or {}))
    if not names:
        return "no BENCH_*.json records found", 0
    width = max(len(n) for n in names) + 2
    lines = []
    regressions = 0
    if baseline is None:
        lines.append(f"{'bench':<{width}}{'seconds':>10}")
        for name in names:
            lines.append(
                f"{name:<{width}}{current[name]['seconds']:>10.4f}"
                f"{_backend_tag(current[name])}"
            )
            phase_line = _phase_line(current[name], 2)
            if phase_line:
                lines.append(phase_line)
        return "\n".join(lines), 0

    lines.append(
        f"{'bench':<{width}}{'baseline':>10}{'current':>10}{'ratio':>8}  status"
    )
    for name in names:
        old = baseline.get(name)
        new = current.get(name)
        if old is None:
            lines.append(
                f"{name:<{width}}{'-':>10}{new['seconds']:>10.4f}{'-':>8}  new"
            )
            continue
        if new is None:
            lines.append(
                f"{name:<{width}}{old['seconds']:>10.4f}{'-':>10}{'-':>8}  missing"
            )
            continue
        old_s, new_s = old["seconds"], new["seconds"]
        ratio = new_s / old_s if old_s > 0 else float("inf")
        status = "ok"
        if fail_threshold is not None and ratio > fail_threshold:
            status = "REGRESSED"
            regressions += 1
        elif ratio < 1.0:
            status = f"{old_s / new_s:.2f}x faster" if new_s > 0 else "faster"
        lines.append(
            f"{name:<{width}}{old_s:>10.4f}{new_s:>10.4f}{ratio:>8.2f}  {status}"
            f"{_backend_tag(new, old)}"
        )
        phase_line = _phase_line(new, 2)
        if phase_line:
            lines.append(phase_line)
    return "\n".join(lines), regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json timing records across runs/commits"
    )
    parser.add_argument(
        "--results",
        type=Path,
        default=DEFAULT_RESULTS,
        help="directory holding the current records (default benchmarks/results)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="directory holding baseline records (e.g. a previous commit's "
        "downloaded CI artifact); omit to just list current timings",
    )
    parser.add_argument(
        "--fail-threshold",
        type=float,
        default=None,
        help="exit non-zero when current/baseline exceeds this ratio "
        "(e.g. 1.5 = 50%% slower)",
    )
    parser.add_argument(
        "--pinned",
        nargs="?",
        type=Path,
        const=DEFAULT_PINNED,
        default=None,
        metavar="DIR",
        help="soft perf gate: compare against the committed pinned records "
        f"(default {DEFAULT_PINNED.name}/) and exit non-zero past "
        f"{PINNED_FAIL_THRESHOLD:.2f}x (override with --fail-threshold); "
        "only benches present in the pinned set gate",
    )
    args = parser.parse_args(argv)

    if args.pinned is not None and args.baseline is not None:
        print("--pinned and --baseline are mutually exclusive", file=sys.stderr)
        return 2
    if not args.results.is_dir():
        print(f"no results directory at {args.results}", file=sys.stderr)
        return 2
    current = load_records(args.results)
    baseline = None
    fail_threshold = args.fail_threshold
    if args.pinned is not None:
        if not args.pinned.is_dir():
            print(f"no pinned directory at {args.pinned}", file=sys.stderr)
            return 2
        baseline = load_records(args.pinned)
        if fail_threshold is None:
            fail_threshold = PINNED_FAIL_THRESHOLD
    elif args.baseline is not None:
        if not args.baseline.is_dir():
            print(f"no baseline directory at {args.baseline}", file=sys.stderr)
            return 2
        baseline = load_records(args.baseline)

    text, regressions = format_report(current, baseline, fail_threshold)
    print(text)
    if regressions:
        print(f"{regressions} regression(s) past threshold", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
