"""Paper Table II — OS vulnerability-similarity table.

Regenerates the similarity table two ways: the embedded published numbers
(exact reproduction) and the full NVD→CPE→Jaccard pipeline on the synthetic
feed (exercises the code path the paper ran against the live NVD).  The
benchmark times the pipeline, which is the paper's measurement-side
computation.
"""

import pytest

from repro.nvd.datasets import WIN_7, WIN_10, WIN_81, WIN_XP, paper_os_similarity
from repro.nvd.generator import (
    SyntheticNVDConfig,
    generate_synthetic_nvd,
    product_cpe_map,
)
from repro.nvd.similarity import similarity_table_from_database


@pytest.fixture(scope="module")
def feed():
    config = SyntheticNVDConfig(seed=7, cves_per_year=200)
    return config, generate_synthetic_nvd(config)


def test_published_table_regenerated(benchmark, write_artifact):
    table = benchmark(paper_os_similarity)
    assert table.get(WIN_7, WIN_XP) == pytest.approx(0.278)
    assert table.get(WIN_10, WIN_81) == pytest.approx(0.697)
    write_artifact("table2_os_similarity", table.format_table())


def test_table2_pipeline_benchmark(benchmark, feed, write_artifact):
    config, database = feed
    os_products = {
        name: cpe
        for name, cpe in product_cpe_map(config).items()
        if cpe.part == "o"
    }

    table = benchmark(
        similarity_table_from_database, database, os_products, 1999, 2016
    )

    # The synthetic feed reproduces the qualitative structure of Table II:
    # adjacent same-vendor versions overlap heavily, rival vendors barely.
    assert table.get("microsoft windows_7", "microsoft windows_8.1") > 0.2
    assert table.get("microsoft windows_7", "canonical ubuntu_14.04") < 0.1
    write_artifact("table2_os_similarity_synthetic", table.format_table())
