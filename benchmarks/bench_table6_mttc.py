"""Paper Table VI — mean-time-to-compromise from five entry points.

Simulates the sophisticated attacker (1,000 NetLogo runs per cell in the
paper; 400 here to keep the bench laptop-friendly — pass more via
table6_mttc for a full run) against α̂, α̂_C1, α̂_C2 and α_m, from entries
c1, c4, e3, r4 and v1 towards target t5.

Shape requirements asserted: the mono-culture row is the weakest (fastest
compromised) overall, and the optimal assignment is the most resilient from
the corporate entries.  Paper rows for reference are embedded in the
artifact.
"""

from repro.experiments import table6_mttc

PAPER_ROWS = {
    "optimal": (45.313, 37.561, 52.663, 52.491, 24.053),
    "host_constrained": (28.041, 16.812, 44.359, 48.472, 15.243),
    "product_constrained": (14.549, 15.817, 45.118, 46.257, 14.749),
    "mono": (14.345, 12.654, 19.338, 18.865, 15.916),
}
LABELS = ("optimal", "host_constrained", "product_constrained", "mono")
ENTRIES = ("c1", "c4", "e3", "r4", "v1")


def test_table6_benchmark(benchmark, case, write_artifact):
    results = benchmark.pedantic(
        table6_mttc,
        args=(case,),
        kwargs=dict(runs=400, seed=11),
        rounds=1,
        iterations=1,
    )

    # Shape: mono weakest on average; optimal strongest from corporate.
    for entry in ("c1", "c4"):
        assert results[("mono", entry)].mttc < results[("optimal", entry)].mttc
    mean = lambda label: sum(results[(label, e)].mttc for e in ENTRIES) / len(ENTRIES)
    assert mean("mono") < mean("product_constrained") <= mean("optimal") * 1.1
    assert mean("mono") < mean("optimal")

    lines = ["Table VI — MTTC in ticks (400 runs per cell; paper: 1000 NetLogo runs)",
             f"{'assignment':<22}" + "".join(f"{e:>9}" for e in ENTRIES)]
    for label in LABELS:
        ours = "".join(f"{results[(label, e)].mttc:9.2f}" for e in ENTRIES)
        paper = "".join(f"{v:9.2f}" for v in PAPER_ROWS[label])
        lines.append(f"{label:<22}{ours}")
        lines.append(f"{'  (paper)':<22}{paper}")
    write_artifact("table6_mttc", "\n".join(lines))
