"""Paper Table IX — optimisation time vs services per host.

Fixed mid-scale host graph (1000 hosts, degree 20), services swept
5 → 30.  Since services are independent replica fields over the same host
graph, runtime must grow roughly linearly in the service count — the
paper's Table IX shows the same near-linear growth (0.60s → 6.97s over
5 → 30 services at mid-scale).
"""

import pytest

from repro.experiments import scalability_cell
from repro.network.generator import RandomNetworkConfig

SERVICE_COUNTS = (5, 10, 15, 20, 25, 30)
HOSTS = 1000
DEGREE = 20

_results = {}


@pytest.mark.parametrize("services", SERVICE_COUNTS)
def test_table9_benchmark(benchmark, services):
    config = RandomNetworkConfig(
        hosts=HOSTS, degree=DEGREE, services=services, seed=0
    )
    cell = benchmark.pedantic(
        scalability_cell, args=(config,), rounds=1, iterations=1
    )
    assert cell.energy > 0
    _results[services] = cell


def test_table9_shape_and_artifact(benchmark, write_artifact, record_bench):
    if len(_results) < len(SERVICE_COUNTS):
        pytest.skip("benchmark cells did not run (collection filter?)")
    assert _results[30].seconds > _results[5].seconds
    # Near-linear growth: 6x services should cost between ~2x and ~15x.
    ratio = _results[30].seconds / max(_results[5].seconds, 1e-9)
    assert 1.5 < ratio < 20.0
    lines = ["Table IX — optimisation time vs services/host (1000 hosts, degree 20)",
             "(paper mid-scale row: 0.60s at 5 services → 6.97s at 30 services)"]
    for services, cell in sorted(_results.items()):
        lines.append("  " + cell.row())
    benchmark(write_artifact, "table9_services", "\n".join(lines))
    record_bench(
        "table9_services",
        seconds=sum(cell.seconds for cell in _results.values()),
        cells={str(services): round(cell.seconds, 6)
               for services, cell in sorted(_results.items())},
    )
