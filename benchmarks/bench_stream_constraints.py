"""Constraint churn — warm-started incremental re-solve vs cold rebuild+solve.

Pins the constraint-delta streaming contract: replaying operator-constraint
events (pins, forbids, combination updates) over a 120-host workload, the
:class:`~repro.stream.incremental.DynamicDiversifier` — in-place unary-mask
patching, intra-host combination-edge edits, warm-started messages — keeps
**identical final energies** to the batch pipeline's cold rebuild+solve of
the mutated network *and* constraint set after every event, at least **3×**
faster.

Timing protocol mirrors ``bench_stream_churn.py``: the full trace is
replayed ``ROUNDS`` times per mode and the best total is kept.  The
measured totals and speedup land in
``benchmarks/results/BENCH_stream_constraints.json``.
"""

import time

import pytest

from repro.core.diversify import diversify
from repro.network.constraints import ConstraintSet
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.stream import (
    ChurnConfig,
    DynamicDiversifier,
    apply_event,
    random_churn_trace,
)

ROUNDS = 2
#: 120-host sparse workload: 3 services × 6 products per host.
CONFIG = RandomNetworkConfig(
    hosts=120, degree=3, services=3, products_per_service=6,
    similarity_density=0.3, seed=1,
)
#: Pure constraint churn — pins/unpins/forbids/allows/combination updates
#: landing in bulk (a policy file of 2 rules per draw).
TRACE = ChurnConfig(
    events=12, seed=1, weights=(0.0, 0.0, 0.0, 0.0, 0.0),
    constraint_weight=1.0, constraint_burst=2,
)


def _run_warm(network, similarity, trace):
    """Replay incrementally; returns (per-event energies, total, colds)."""
    engine = DynamicDiversifier(network.copy(), similarity.copy())
    engine.solve()
    energies, total, cold_solves = [], 0.0, 0
    for event in trace:
        engine.apply(event)
        start = time.perf_counter()
        result = engine.solve()
        total += time.perf_counter() - start
        energies.append(result.energy)
        if not result.warm:
            cold_solves += 1
    return energies, total, cold_solves


def _run_cold(network, similarity, trace):
    """Cold rebuild+solve of network+constraints after every event."""
    net, sim = network.copy(), similarity.copy()
    constraints = ConstraintSet()
    energies, total = [], 0.0
    for event in trace:
        apply_event(net, sim, event, constraints)
        start = time.perf_counter()
        result = diversify(net, sim, constraints=constraints)
        total += time.perf_counter() - start
        energies.append(result.energy)
    return energies, total


def test_stream_constraints_warm_speedup(record_bench):
    network, similarity = random_network(CONFIG), random_similarity(CONFIG)
    trace = random_churn_trace(network, TRACE)
    assert len(trace) == TRACE.events

    warm_energies = cold_energies = None
    warm_total = cold_total = float("inf")
    cold_solves = 0
    for _ in range(ROUNDS):
        energies, seconds, colds = _run_warm(network, similarity, trace)
        warm_energies, warm_total = energies, min(warm_total, seconds)
        cold_solves = colds
        energies, seconds = _run_cold(network, similarity, trace)
        cold_energies, cold_total = energies, min(cold_total, seconds)

    # Identical final energies after every single constraint event.
    assert warm_energies == pytest.approx(cold_energies, abs=1e-9)
    # Every re-solve actually took the incremental path.
    assert cold_solves == 0, f"{cold_solves} re-solves fell back to cold"

    speedup = cold_total / warm_total
    record_bench(
        "stream_constraints",
        seconds=warm_total,
        cold_seconds=round(cold_total, 6),
        speedup=round(speedup, 2),
        events=len(trace),
        constraint_burst=TRACE.constraint_burst,
        hosts=CONFIG.hosts,
        degree=CONFIG.degree,
        services=CONFIG.services,
        final_energy=round(warm_energies[-1], 6),
    )
    # The acceptance bar for constraint-delta streaming.
    assert speedup >= 3.0, f"warm-started re-solve only {speedup:.1f}x faster"
