"""Ablation — strength of the similarity penalty λ (pairwise_weight).

The paper's Eq. 3 calls the pairwise cost "a strong regularization on the
product assignment".  This bench sweeps λ and records the induced total
edge similarity.  Because the unary term is a constant (no product
preferences), any λ > 0 yields the same optimiser — the interesting regime
is λ interacting with *preferences*: we add soft preferences for a
mono-culture (everyone prefers the same product) and show the similarity
penalty progressively overriding them as λ grows.
"""


from repro.core.diversify import diversify
from repro.network.topologies import ring_network
from repro.nvd.similarity import SimilarityTable

WEIGHTS = (0.0, 0.1, 0.5, 1.0, 4.0)


def test_regularisation_sweep(benchmark, write_artifact):
    network = ring_network(12, services={"svc": ["p0", "p1", "p2"]})
    similarity = SimilarityTable(
        pairs={("p0", "p1"): 0.6, ("p1", "p2"): 0.6, ("p0", "p2"): 0.6}
    )
    # Everyone mildly prefers p0 — the mono-culture pull the penalty fights.
    preferences = {
        (host, "svc", "p0"): -0.3 for host in network.hosts
    }

    def sweep():
        rows = {}
        for weight in WEIGHTS:
            result = diversify(
                network, similarity,
                pairwise_weight=weight, preferences=preferences,
                fast_path=False, max_iterations=60,
            )
            mono_hosts = sum(
                1 for host in network.hosts
                if result.assignment.get(host, "svc") == "p0"
            )
            rows[weight] = (result.similarity_total, mono_hosts)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    # λ=0: preferences win, full mono-culture; large λ: diversity wins.
    assert rows[0.0][1] == 12
    assert rows[4.0][1] < 12
    assert rows[4.0][0] < rows[0.0][0]
    # Monotone (non-increasing) similarity as the penalty grows.
    totals = [rows[w][0] for w in WEIGHTS]
    assert all(a >= b - 1e-9 for a, b in zip(totals, totals[1:]))

    lines = ["Ablation — similarity-penalty strength λ vs induced mono-culture",
             f"{'lambda':>8}{'total edge sim':>16}{'hosts on p0':>13}"]
    for weight in WEIGHTS:
        total, mono = rows[weight]
        lines.append(f"{weight:>8.1f}{total:>16.3f}{mono:>13d}")
    write_artifact("ablation_regularisation", "\n".join(lines))
