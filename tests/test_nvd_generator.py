"""Tests for the synthetic NVD feed (repro.nvd.generator)."""

import pytest

from repro.nvd.generator import (
    ProductLineage,
    SyntheticNVDConfig,
    default_lineages,
    generate_synthetic_nvd,
    product_cpe_map,
)
from repro.nvd.similarity import similarity_table_from_database


@pytest.fixture(scope="module")
def feed():
    config = SyntheticNVDConfig(seed=7, cves_per_year=120, years=(2000, 2010))
    return config, generate_synthetic_nvd(config)


class TestConfig:
    def test_defaults_use_builtin_universe(self):
        assert SyntheticNVDConfig().lineages == default_lineages()

    def test_invalid_year_range_rejected(self):
        with pytest.raises(ValueError):
            SyntheticNVDConfig(years=(2010, 2000))

    @pytest.mark.parametrize(
        "field", ["p_adjacent_version", "p_same_vendor", "p_cross_vendor"]
    )
    def test_invalid_probability_rejected(self, field):
        with pytest.raises(ValueError):
            SyntheticNVDConfig(**{field: 1.5})

    def test_lineage_cpes(self):
        lineage = ProductLineage("v", "prod", ("1", "2"))
        uris = [c.uri() for c in lineage.cpes()]
        assert uris == ["cpe:/a:v:prod_1", "cpe:/a:v:prod_2"]


class TestFeed:
    def test_record_count(self, feed):
        config, db = feed
        assert len(db) == 120 * 11

    def test_deterministic(self, feed):
        config, db = feed
        again = generate_synthetic_nvd(config)
        assert again.to_json() == db.to_json()

    def test_different_seed_differs(self, feed):
        config, db = feed
        other = generate_synthetic_nvd(
            SyntheticNVDConfig(seed=8, cves_per_year=120, years=(2000, 2010))
        )
        assert other.to_json() != db.to_json()

    def test_years_within_range(self, feed):
        _, db = feed
        assert all(2000 <= r.year <= 2010 for r in db)

    def test_every_record_has_a_seat(self, feed):
        _, db = feed
        assert all(len(r.affected) >= 1 for r in db)


class TestSimilarityShape:
    """The generated feed reproduces the sharing structure of the paper's
    Tables II/III: same-lineage >> same-vendor >> cross-vendor."""

    def test_structure(self, feed):
        config, db = feed
        mapping = product_cpe_map(config)
        table = similarity_table_from_database(db, mapping)

        adjacent = table.get("microsoft windows_7", "microsoft windows_8.1")
        cross_vendor = table.get("google chrome_50", "mozilla firefox_45")
        assert adjacent > 0.2
        assert cross_vendor < 0.1
        assert adjacent > cross_vendor

    def test_version_distance_decay(self, feed):
        config, db = feed
        mapping = product_cpe_map(config)
        table = similarity_table_from_database(db, mapping)
        near = table.get("microsoft windows_7", "microsoft windows_8.1")
        far = table.get("microsoft windows_xp", "microsoft windows_10")
        assert near > far

    def test_all_products_collected_some_vulnerabilities(self, feed):
        config, db = feed
        mapping = product_cpe_map(config)
        table = similarity_table_from_database(db, mapping)
        assert all(table.vulnerability_counts[name] > 0 for name in mapping)
