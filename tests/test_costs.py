"""Tests for the MRF cost builder (repro.core.costs)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import HARD_COST, assignment_energy, build_mrf
from repro.mrf.energy import energy_breakdown
from repro.network.assignment import ProductAssignment
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network, NetworkError
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def net():
    network = Network()
    spec = {"os": ["w", "l"], "wb": ["ie", "ch"]}
    for name in ("a", "b", "c"):
        network.add_host(name, spec)
    network.add_link("a", "b")
    network.add_link("b", "c")
    return network


@pytest.fixture
def sim():
    return SimilarityTable(pairs={("w", "l"): 0.2, ("ie", "ch"): 0.1})


class TestStructure:
    def test_variable_mapping(self, net, sim):
        build = build_mrf(net, sim)
        assert build.mrf.node_count == 6
        assert build.variables[build.index[("b", "wb")]] == ("b", "wb")
        assert build.candidates[build.index[("a", "os")]] == ("w", "l")

    def test_edge_count_without_constraints(self, net, sim):
        build = build_mrf(net, sim)
        # 2 links × 2 shared services.
        assert build.mrf.edge_count == 4

    def test_pairwise_matrix_values(self, net, sim):
        build = build_mrf(net, sim)
        edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("b", "os")])
        cost = build.mrf.edge_cost(edge)
        assert cost[0, 0] == 1.0  # w vs w
        assert cost[0, 1] == pytest.approx(0.2)

    def test_matrices_shared_by_reference(self, net, sim):
        build = build_mrf(net, sim)
        first = build.mrf.edge_id(build.index[("a", "os")], build.index[("b", "os")])
        second = build.mrf.edge_id(build.index[("b", "os")], build.index[("c", "os")])
        assert build.mrf.edge_cost(first) is build.mrf.edge_cost(second)

    def test_pairwise_weight_scales(self, net, sim):
        build = build_mrf(net, sim, pairwise_weight=2.0)
        edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("b", "os")])
        assert build.mrf.edge_cost(edge)[0, 1] == pytest.approx(0.4)

    def test_negative_weight_rejected(self, net, sim):
        with pytest.raises(ValueError):
            build_mrf(net, sim, pairwise_weight=-1.0)

    def test_unary_constant(self, net, sim):
        build = build_mrf(net, sim, unary_constant=0.5)
        assert build.mrf.unary(0).tolist() == [0.5, 0.5]

    def test_preferences_added(self, net, sim):
        build = build_mrf(net, sim, preferences={("a", "os", "l"): -0.3})
        node = build.index[("a", "os")]
        assert build.mrf.unary(node)[1] == pytest.approx(0.01 - 0.3)


class TestConstraintEncoding:
    def test_fix_product_mask(self, net, sim):
        build = build_mrf(net, sim, constraints=ConstraintSet([FixProduct("a", "os", "l")]))
        unary = build.mrf.unary(build.index[("a", "os")])
        assert unary[1] == pytest.approx(0.01)
        assert unary[0] >= HARD_COST

    def test_forbid_product_mask(self, net, sim):
        build = build_mrf(net, sim, constraints=ConstraintSet([ForbidProduct("a", "os", "l")]))
        unary = build.mrf.unary(build.index[("a", "os")])
        assert unary[0] == pytest.approx(0.01)
        assert unary[1] >= HARD_COST

    def test_avoid_combination_table(self, net, sim):
        cs = ConstraintSet([AvoidCombination("a", "os", "l", "wb", "ie")])
        build = build_mrf(net, sim, constraints=cs)
        assert build.mrf.edge_count == 5  # 4 similarity + 1 intra-host
        edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("a", "wb")])
        cost = build.mrf.edge_cost(edge)
        first, _ = build.mrf.edge(edge)
        table = cost if first == build.index[("a", "os")] else cost.T
        assert table[1, 0] == HARD_COST  # (l, ie) forbidden
        assert table[0, 0] == 0.0

    def test_require_combination_table(self, net, sim):
        cs = ConstraintSet([RequireCombination("a", "os", "l", "wb", "ch")])
        build = build_mrf(net, sim, constraints=cs)
        edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("a", "wb")])
        cost = build.mrf.edge_cost(edge)
        first, _ = build.mrf.edge(edge)
        table = cost if first == build.index[("a", "os")] else cost.T
        assert table[1, 0] == HARD_COST  # (l, ie) breaks the requirement
        assert table[1, 1] == 0.0        # (l, ch) satisfies it

    def test_global_combination_applies_to_all_hosts(self, net, sim):
        cs = ConstraintSet([AvoidCombination(GLOBAL, "os", "l", "wb", "ie")])
        build = build_mrf(net, sim, constraints=cs)
        assert build.mrf.edge_count == 4 + 3

    def test_multiple_constraints_accumulate_one_edge(self, net, sim):
        cs = ConstraintSet(
            [
                AvoidCombination("a", "os", "l", "wb", "ie"),
                AvoidCombination("a", "os", "w", "wb", "ch"),
            ]
        )
        build = build_mrf(net, sim, constraints=cs)
        assert build.mrf.edge_count == 5

    def test_conflicting_fixes_rejected(self, net, sim):
        cs = ConstraintSet([FixProduct("a", "os", "w"), FixProduct("a", "os", "l")])
        with pytest.raises(NetworkError):
            build_mrf(net, sim, constraints=cs)

    def test_duplicate_fix_allowed(self, net, sim):
        cs = ConstraintSet([FixProduct("a", "os", "w"), FixProduct("a", "os", "w")])
        build_mrf(net, sim, constraints=cs)  # must not raise

    def test_invalid_constraint_rejected_at_build(self, net, sim):
        cs = ConstraintSet([FixProduct("a", "os", "zz")])
        with pytest.raises(NetworkError):
            build_mrf(net, sim, constraints=cs)


class TestLabelRoundTrip:
    def test_labels_to_assignment_and_back(self, net, sim):
        build = build_mrf(net, sim)
        labels = [0, 1, 1, 0, 0, 1]
        assignment = build.labels_to_assignment(net, labels)
        assert build.assignment_to_labels(assignment) == labels

    def test_incomplete_assignment_rejected(self, net, sim):
        build = build_mrf(net, sim)
        with pytest.raises(NetworkError):
            build.assignment_to_labels(ProductAssignment(net))


class TestEnergyParity:
    """mrf.energy(labels) must equal the direct evaluation of Eq. 1."""

    @settings(max_examples=30, deadline=None)
    @given(bits=st.lists(st.integers(0, 1), min_size=6, max_size=6))
    def test_parity_unconstrained(self, bits):
        network = Network()
        spec = {"os": ["w", "l"], "wb": ["ie", "ch"]}
        for name in ("a", "b", "c"):
            network.add_host(name, spec)
        network.add_link("a", "b")
        network.add_link("b", "c")
        similarity = SimilarityTable(pairs={("w", "l"): 0.2, ("ie", "ch"): 0.1})
        build = build_mrf(network, similarity)
        assignment = build.labels_to_assignment(network, bits)
        assert build.mrf.energy(bits) == pytest.approx(
            assignment_energy(network, similarity, assignment)
        )

    def test_parity_with_constraints(self, net, sim):
        cs = ConstraintSet(
            [
                FixProduct("a", "os", "w"),
                AvoidCombination(GLOBAL, "os", "l", "wb", "ie"),
            ]
        )
        build = build_mrf(net, sim, constraints=cs)
        # A labelling violating both kinds of hard constraints.
        labels = build.assignment_to_labels(
            ProductAssignment(
                net,
                {
                    ("a", "os"): "l", ("a", "wb"): "ie",
                    ("b", "os"): "l", ("b", "wb"): "ie",
                    ("c", "os"): "w", ("c", "wb"): "ch",
                },
            )
        )
        direct = assignment_energy(
            net, sim, build.labels_to_assignment(net, labels), constraints=cs
        )
        assert build.mrf.energy(labels) == pytest.approx(direct)

    def test_breakdown_sums_to_energy(self, net, sim):
        build = build_mrf(net, sim)
        labels = [0, 1, 1, 0, 0, 1]
        unary, pairwise = energy_breakdown(build.mrf, labels)
        assert unary + pairwise == pytest.approx(build.mrf.energy(labels))
