"""Parity tests: vectorized solvers vs their per-node reference solvers.

The vectorized :class:`~repro.mrf.trws.TRWSSolver` and
:class:`~repro.mrf.bp.LoopyBPSolver` must compute the same updates as the
pre-vectorization implementations kept in :mod:`repro.mrf.reference` — same
labellings, same energies, same dual bounds, same iteration counts — on
loopy graphs, trees, heterogeneous label spaces and the case-study MRF.
Also covers the :class:`~repro.mrf.vectorized.MRFArrays` plan invariants
the solvers rely on.
"""

import numpy as np
import pytest

from repro.mrf.bp import LoopyBPSolver
from repro.mrf.graph import PairwiseMRF
from repro.mrf.icm import ICMSolver
from repro.mrf.reference import ReferenceBPSolver, ReferenceTRWSSolver
from repro.mrf.solvers import available_solvers, get_solver
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays

from helpers import make_random_mrf


class TestPlan:
    def test_wavefront_levels_are_independent_sets(self):
        mrf = make_random_mrf(nodes=12, edge_probability=0.5, max_labels=4, seed=3)
        plan = MRFArrays(mrf)
        for level in plan.fwd_levels:
            members = set(int(x) for x in level.nodes)
            for i in members:
                for j, _edge in mrf.neighbors(i):
                    assert j not in members, "adjacent nodes share a level"
        # Every node appears in exactly one forward level.
        seen = sorted(int(x) for level in plan.fwd_levels for x in level.nodes)
        assert seen == list(range(mrf.node_count))

    def test_every_edge_sent_once_per_sweep_direction(self):
        mrf = make_random_mrf(nodes=10, edge_probability=0.6, max_labels=3, seed=5)
        plan = MRFArrays(mrf)
        fwd = sorted(int(s) for level in plan.fwd_levels for s in level.out)
        bwd = sorted(int(s) for block in plan.bwd_levels for s in block.out)
        assert len(fwd) == mrf.edge_count
        assert len(bwd) == mrf.edge_count
        assert sorted(fwd + bwd) == list(range(2 * mrf.edge_count))

    @pytest.mark.parametrize("seed", range(6))
    def test_energy_matches_graph_energy(self, seed):
        mrf = make_random_mrf(nodes=8, edge_probability=0.5, max_labels=4, seed=seed)
        plan = MRFArrays(mrf)
        rng = np.random.default_rng(seed)
        labels = np.array(
            [rng.integers(mrf.label_count(i)) for i in range(mrf.node_count)]
        )
        assert plan.energy(labels) == pytest.approx(
            mrf.energy([int(x) for x in labels]), abs=1e-9
        )

    def test_cost_stack_shares_matrices(self):
        # Two edges referencing the same ndarray must share one stack slot.
        mrf = PairwiseMRF()
        for _ in range(3):
            mrf.add_node([0.0, 0.5])
        shared = np.array([[0.0, 1.0], [1.0, 0.0]])
        mrf.add_edge(0, 1, shared)
        mrf.add_edge(1, 2, shared)
        mrf.add_edge(0, 2, np.array([[0.2, 0.0], [0.0, 0.2]]))
        plan = MRFArrays(mrf)
        assert plan.edge_cid[0] == plan.edge_cid[1]
        assert plan.edge_cid[2] != plan.edge_cid[0]
        # Stack holds 2 distinct matrices + their transposes.
        assert plan.cost.shape[0] == 4

    def test_icm_matches_reference_icm(self):
        for seed in range(8):
            mrf = make_random_mrf(nodes=9, edge_probability=0.5, max_labels=4,
                                  seed=seed)
            initial = [0] * mrf.node_count
            reference = ICMSolver(initial=initial).solve(mrf)
            plan = MRFArrays(mrf)
            vectorized = plan.icm(np.zeros(mrf.node_count, dtype=np.int64))
            assert [int(x) for x in vectorized] == reference.labels

    def test_padding_convention(self):
        # Mixed label counts: padded belief slots are +inf, message slots 0.
        mrf = PairwiseMRF()
        mrf.add_node([0.1, 0.2, 0.3])
        mrf.add_node([0.4, 0.5])
        mrf.add_edge(0, 1, np.array([[0.0, 1.0], [1.0, 0.0], [0.5, 0.5]]))
        plan = MRFArrays(mrf)
        beliefs = plan.padded_beliefs()
        assert beliefs[1, 2] == np.inf and np.isfinite(beliefs[0]).all()
        assert plan.zero_messages().shape == (2, 3)
        assert plan.cost[plan.edge_cid[0], 2, 1] == 0.5
        assert plan.cost[plan.edge_cid[0], 0, 2] == np.inf  # padded column


class TestTRWSParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_loopy_random_instances(self, seed):
        # Belief sums accumulate in level-major rather than node order, so
        # the two solvers agree to float round-off, not bit-for-bit: assert
        # equal energies/bounds and equally-good labellings, not identical
        # label lists (those could legitimately differ at an exact tie).
        mrf = make_random_mrf(nodes=9, edge_probability=0.5, max_labels=4,
                              seed=seed)
        fast = TRWSSolver(max_iterations=40).solve(mrf)
        slow = ReferenceTRWSSolver(max_iterations=40).solve(mrf)
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
        assert fast.lower_bound == pytest.approx(slow.lower_bound, abs=1e-7)
        assert mrf.energy(fast.labels) == pytest.approx(
            mrf.energy(slow.labels), abs=1e-9
        )
        assert fast.converged == slow.converged

    @pytest.mark.parametrize("seed", range(4))
    def test_trees_hit_identical_exact_path(self, seed):
        mrf = make_random_mrf(nodes=8, edge_probability=0.0, max_labels=3,
                              seed=seed, tree=True)
        fast = TRWSSolver().solve(mrf)
        slow = ReferenceTRWSSolver().solve(mrf)
        assert fast.labels == slow.labels
        assert fast.energy == slow.energy == fast.lower_bound

    def test_dense_heterogeneous_labels(self):
        # Fully connected with label counts 2..5 stresses the padding.
        rng = np.random.default_rng(7)
        mrf = PairwiseMRF()
        counts = [2, 3, 4, 5, 3, 2]
        for count in counts:
            mrf.add_node(rng.uniform(0.0, 1.0, count))
        for i in range(len(counts)):
            for j in range(i + 1, len(counts)):
                mrf.add_edge(i, j, rng.uniform(0.0, 1.0, (counts[i], counts[j])))
        fast = TRWSSolver(max_iterations=50).solve(mrf)
        slow = ReferenceTRWSSolver(max_iterations=50).solve(mrf)
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
        assert fast.lower_bound == pytest.approx(slow.lower_bound, abs=1e-7)
        assert mrf.energy(fast.labels) == pytest.approx(
            mrf.energy(slow.labels), abs=1e-9
        )

    def test_no_tie_break_noise(self):
        mrf = make_random_mrf(nodes=7, edge_probability=0.6, max_labels=3, seed=2)
        fast = TRWSSolver(max_iterations=30, tie_break_noise=0.0).solve(mrf)
        slow = ReferenceTRWSSolver(max_iterations=30, tie_break_noise=0.0).solve(mrf)
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
        assert fast.lower_bound == pytest.approx(slow.lower_bound, abs=1e-7)

    def test_compute_bound_disabled(self):
        mrf = make_random_mrf(nodes=7, edge_probability=1.0, max_labels=3, seed=1)
        fast = TRWSSolver(max_iterations=5, compute_bound=False).solve(mrf)
        slow = ReferenceTRWSSolver(max_iterations=5, compute_bound=False).solve(mrf)
        assert fast.lower_bound == slow.lower_bound == float("-inf")
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)

    def test_case_study_mrf(self):
        from repro.casestudy.stuxnet import stuxnet_case_study
        from repro.core.costs import build_mrf

        case = stuxnet_case_study()
        build = build_mrf(case.network, case.similarity, constraints=case.c1)
        fast = TRWSSolver(max_iterations=100).solve(build.mrf)
        slow = ReferenceTRWSSolver(max_iterations=100).solve(build.mrf)
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
        assert fast.lower_bound == pytest.approx(slow.lower_bound, abs=1e-6)

    def test_traces_match(self):
        mrf = make_random_mrf(nodes=8, edge_probability=0.6, max_labels=3, seed=9)
        fast = TRWSSolver(max_iterations=12).solve(mrf)
        slow = ReferenceTRWSSolver(max_iterations=12).solve(mrf)
        assert fast.energy_trace == pytest.approx(slow.energy_trace, abs=1e-9)
        assert fast.bound_trace == pytest.approx(slow.bound_trace, abs=1e-7)


class TestBPParity:
    @pytest.mark.parametrize("seed", range(12))
    def test_random_instances(self, seed):
        mrf = make_random_mrf(nodes=9, edge_probability=0.5, max_labels=4,
                              seed=seed + 100)
        fast = LoopyBPSolver(max_iterations=40).solve(mrf)
        slow = ReferenceBPSolver(max_iterations=40).solve(mrf)
        assert fast.labels == slow.labels
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
        assert fast.iterations == slow.iterations
        assert fast.converged == slow.converged

    @pytest.mark.parametrize("damping", [0.0, 0.3, 0.9])
    def test_damping_settings(self, damping):
        mrf = make_random_mrf(nodes=8, edge_probability=0.6, max_labels=3, seed=4)
        fast = LoopyBPSolver(max_iterations=30, damping=damping).solve(mrf)
        slow = ReferenceBPSolver(max_iterations=30, damping=damping).solve(mrf)
        assert fast.labels == slow.labels
        assert fast.iterations == slow.iterations

    def test_isolated_nodes(self):
        mrf = PairwiseMRF()
        mrf.add_node([0.5, 0.1])
        mrf.add_node([0.9, 0.2, 0.1])
        fast = LoopyBPSolver().solve(mrf)
        slow = ReferenceBPSolver().solve(mrf)
        assert fast.labels == slow.labels == [1, 2]
        assert fast.converged and slow.converged


class TestRegistry:
    def test_reference_solvers_registered(self):
        assert {"trws-ref", "bp-ref"} <= set(available_solvers())
        assert isinstance(get_solver("trws-ref"), ReferenceTRWSSolver)
        assert isinstance(get_solver("bp-ref"), ReferenceBPSolver)

    def test_reference_usable_through_diversify(self, small_network, two_product_table):
        from repro.core.diversify import diversify

        fast = diversify(small_network, two_product_table, solver="trws",
                         fast_path=False)
        slow = diversify(small_network, two_product_table, solver="trws-ref",
                         fast_path=False)
        assert fast.energy == pytest.approx(slow.energy, abs=1e-9)
