"""End-to-end integration tests across all subsystems.

The full paper pipeline: synthetic NVD feed → similarity table → network
modelling → constrained MRF optimisation → BN diversity metric → MTTC
simulation.  Nothing here mocks anything.
"""

import pytest

from repro import (
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    Network,
    diversify,
    diversity_metric,
    mean_time_to_compromise,
    mono_assignment,
    random_assignment,
)
from repro.core.costs import assignment_energy
from repro.network.constraints import GLOBAL
from repro.nvd.generator import (
    SyntheticNVDConfig,
    generate_synthetic_nvd,
    product_cpe_map,
)
from repro.nvd.similarity import similarity_table_from_database


@pytest.fixture(scope="module")
def pipeline():
    """NVD feed → similarity table → enterprise network."""
    config = SyntheticNVDConfig(seed=3, cves_per_year=150, years=(2005, 2015))
    database = generate_synthetic_nvd(config)
    table = similarity_table_from_database(
        database, product_cpe_map(config), since=2005, until=2015
    )

    windows = ["microsoft windows_7", "microsoft windows_8.1", "microsoft windows_10"]
    linux = ["canonical ubuntu_14.04", "debian debian_8.0"]
    browsers = [
        "microsoft internet_explorer_10", "google chrome_50", "mozilla firefox_45",
    ]
    databases = ["microsoft sql_server_2014", "oracle mysql_5.5", "mariadb mariadb_10.0"]

    network = Network()
    network.add_host("gateway", {"os": windows + linux, "wb": browsers})
    network.add_host("web", {"os": windows + linux, "wb": browsers, "db": databases})
    network.add_host("app", {"os": windows + linux, "db": databases})
    network.add_host("db", {"os": windows + linux, "db": databases})
    network.add_host("hmi", {"os": windows, "wb": browsers})
    network.add_host("plc-gw", {"os": [windows[0]]})  # legacy, no flexibility
    network.add_links(
        [
            ("gateway", "web"), ("web", "app"), ("app", "db"),
            ("app", "hmi"), ("hmi", "plc-gw"), ("gateway", "hmi"),
        ]
    )
    return network, table


class TestFullPipeline:
    def test_optimisation_improves_on_baselines(self, pipeline):
        network, table = pipeline
        optimal = diversify(network, table)
        assert optimal.assignment.is_complete()
        mono_energy = assignment_energy(network, table, mono_assignment(network))
        random_energy = assignment_energy(
            network, table, random_assignment(network, seed=0)
        )
        assert optimal.energy <= mono_energy
        assert optimal.energy <= random_energy

    def test_constrained_pipeline(self, pipeline):
        network, table = pipeline
        constraints = ConstraintSet(
            [
                FixProduct("gateway", "os", "microsoft windows_10"),
                AvoidCombination(
                    GLOBAL, "os", "canonical ubuntu_14.04",
                    "wb", "microsoft internet_explorer_10",
                ),
            ]
        )
        result = diversify(network, table, constraints=constraints)
        assert result.satisfied
        assert result.assignment.get("gateway", "os") == "microsoft windows_10"
        unconstrained = diversify(network, table)
        assert result.energy >= unconstrained.energy - 1e-9

    def test_metrics_rank_optimal_above_mono(self, pipeline):
        network, table = pipeline
        optimal = diversify(network, table).assignment
        mono = mono_assignment(network)

        d_optimal = diversity_metric(network, optimal, table, "gateway", "plc-gw")
        d_mono = diversity_metric(network, mono, table, "gateway", "plc-gw")
        assert d_optimal.d_bn >= d_mono.d_bn
        assert d_optimal.p_without == pytest.approx(d_mono.p_without)

        kwargs = dict(entry="gateway", target="plc-gw", runs=200, seed=2)
        mttc_optimal = mean_time_to_compromise(network, optimal, table, **kwargs)
        mttc_mono = mean_time_to_compromise(network, mono, table, **kwargs)
        assert mttc_optimal.mttc >= mttc_mono.mttc

    def test_energy_reported_matches_reevaluation(self, pipeline):
        network, table = pipeline
        result = diversify(network, table, fast_path=False)
        direct = assignment_energy(network, table, result.assignment)
        assert result.energy == pytest.approx(direct)
