"""Tests for the effective-richness metric d1 (repro.metrics.richness)."""


import pytest
from hypothesis import given, strategies as st

from repro.core.baselines import mono_assignment
from repro.metrics.richness import (
    effective_richness,
    similarity_sensitive_richness,
)
from repro.network.assignment import ProductAssignment
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable


def assignment_with(net, products):
    assignment = ProductAssignment(net)
    for host, product in zip(net.hosts, products):
        assignment.assign(host, "svc", product)
    return assignment


@pytest.fixture
def net4():
    return chain_network(4, services={"svc": ["a", "b", "c", "d"]})


class TestEffectiveRichness:
    def test_mono_culture_is_one(self, net4):
        report = effective_richness(net4, assignment_with(net4, ["a"] * 4))
        assert report.effective == pytest.approx(1.0)
        assert report.d1 == pytest.approx(1 / 4)
        assert report.distinct == 1

    def test_perfectly_balanced(self, net4):
        report = effective_richness(net4, assignment_with(net4, ["a", "b", "c", "d"]))
        assert report.effective == pytest.approx(4.0)
        assert report.d1 == pytest.approx(1.0)

    def test_skewed_between_extremes(self, net4):
        report = effective_richness(net4, assignment_with(net4, ["a", "a", "a", "b"]))
        assert 1.0 < report.effective < 2.0

    def test_shannon_value(self, net4):
        report = effective_richness(net4, assignment_with(net4, ["a", "a", "b", "b"]))
        assert report.effective == pytest.approx(2.0)

    def test_empty_assignment(self, net4):
        report = effective_richness(net4, ProductAssignment(net4))
        assert report.installations == 0 and report.d1 == 0.0

    def test_per_service_breakdown(self):
        from repro.network.model import Network

        net = Network()
        net.add_host("x", {"os": ["w", "l"], "db": ["m"]})
        net.add_host("y", {"os": ["w", "l"], "db": ["m"]})
        assignment = ProductAssignment(
            net,
            {("x", "os"): "w", ("y", "os"): "l", ("x", "db"): "m", ("y", "db"): "m"},
        )
        report = effective_richness(net, assignment)
        assert report.per_service["os"] == pytest.approx(2.0)
        assert report.per_service["db"] == pytest.approx(1.0)

    def test_mono_baseline_scores_lowest(self, net4):
        mono = effective_richness(net4, mono_assignment(net4))
        diverse = effective_richness(net4, assignment_with(net4, ["a", "b", "c", "d"]))
        assert mono.d1 < diverse.d1

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=4, max_size=4))
    def test_property_bounds(self, products):
        net = chain_network(4, services={"svc": ["a", "b", "c", "d"]})
        report = effective_richness(net, assignment_with(net, products))
        assert 1.0 - 1e-9 <= report.effective <= report.distinct + 1e-9
        assert 0.0 < report.d1 <= 1.0

    def test_row_format(self, net4):
        report = effective_richness(net4, assignment_with(net4, ["a", "b", "a", "b"]))
        assert "d1=" in report.row("test")


class TestSimilaritySensitive:
    def test_mono_is_one_regardless_of_similarity(self, net4):
        table = SimilarityTable(pairs={("a", "b"): 0.9})
        value = similarity_sensitive_richness(
            net4, assignment_with(net4, ["a"] * 4), table
        )
        assert value == pytest.approx(1.0)

    def test_balanced_pair_formula(self, net4):
        table = SimilarityTable(pairs={("a", "b"): 0.5})
        value = similarity_sensitive_richness(
            net4, assignment_with(net4, ["a", "a", "b", "b"]), table
        )
        assert value == pytest.approx(2 / 1.5)

    def test_orthogonal_products_recover_simpson(self, net4):
        value = similarity_sensitive_richness(
            net4, assignment_with(net4, ["a", "a", "b", "b"]), SimilarityTable()
        )
        assert value == pytest.approx(2.0)

    def test_similar_products_count_less(self, net4):
        low = similarity_sensitive_richness(
            net4, assignment_with(net4, ["a", "b", "a", "b"]),
            SimilarityTable(pairs={("a", "b"): 0.8}),
        )
        high = similarity_sensitive_richness(
            net4, assignment_with(net4, ["a", "b", "a", "b"]),
            SimilarityTable(pairs={("a", "b"): 0.1}),
        )
        assert low < high

    def test_empty(self, net4):
        assert similarity_sensitive_richness(
            net4, ProductAssignment(net4), SimilarityTable()
        ) == 0.0
