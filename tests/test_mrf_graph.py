"""Unit tests for the pairwise MRF container (repro.mrf.graph)."""

import numpy as np
import pytest

from repro.mrf.graph import MRFError, PairwiseMRF


@pytest.fixture
def mrf():
    m = PairwiseMRF()
    a = m.add_node([0.0, 1.0])
    b = m.add_node([1.0, 0.0, 2.0])
    c = m.add_node([0.5, 0.5])
    m.add_edge(a, b, np.arange(6, dtype=float).reshape(2, 3))
    m.add_edge(b, c, np.zeros((3, 2)))
    return m


class TestConstruction:
    def test_counts(self, mrf):
        assert mrf.node_count == 3
        assert mrf.edge_count == 2
        assert mrf.label_count(1) == 3

    def test_empty_unary_rejected(self):
        with pytest.raises(MRFError):
            PairwiseMRF().add_node([])

    def test_matrix_unary_rejected(self):
        with pytest.raises(MRFError):
            PairwiseMRF().add_node([[1.0, 2.0]])

    def test_self_edge_rejected(self, mrf):
        with pytest.raises(MRFError):
            mrf.add_edge(0, 0, np.zeros((2, 2)))

    def test_duplicate_edge_rejected(self, mrf):
        with pytest.raises(MRFError):
            mrf.add_edge(1, 0, np.zeros((3, 2)))

    def test_shape_mismatch_rejected(self, mrf):
        with pytest.raises(MRFError):
            mrf.add_edge(0, 2, np.zeros((3, 3)))

    def test_unknown_node_rejected(self, mrf):
        with pytest.raises(MRFError):
            mrf.add_edge(0, 9, np.zeros((2, 2)))

    def test_shared_cost_matrix_by_reference(self):
        m = PairwiseMRF()
        nodes = [m.add_node([0.0, 0.0]) for _ in range(3)]
        shared = np.zeros((2, 2))
        m.add_edge(nodes[0], nodes[1], shared)
        m.add_edge(nodes[1], nodes[2], shared)
        assert m.edge_cost(0) is m.edge_cost(1)

    def test_add_unary_accumulates(self, mrf):
        mrf.add_unary(0, [1.0, 1.0])
        assert mrf.unary(0).tolist() == [1.0, 2.0]

    def test_add_unary_shape_checked(self, mrf):
        with pytest.raises(MRFError):
            mrf.add_unary(0, [1.0, 1.0, 1.0])


class TestQueries:
    def test_neighbors(self, mrf):
        assert [n for n, _ in mrf.neighbors(1)] == [0, 2]

    def test_has_edge_and_edge_id(self, mrf):
        assert mrf.has_edge(1, 0)
        assert mrf.edge_id(2, 1) == 1
        assert not mrf.has_edge(0, 2)

    def test_edges_iteration(self, mrf):
        triples = list(mrf.edges())
        assert [(i, j) for i, j, _ in triples] == [(0, 1), (1, 2)]

    def test_connected_components_single(self, mrf):
        assert mrf.connected_components() == [[0, 1, 2]]

    def test_connected_components_split(self):
        m = PairwiseMRF()
        for _ in range(4):
            m.add_node([0.0, 1.0])
        m.add_edge(0, 1, np.zeros((2, 2)))
        m.add_edge(2, 3, np.zeros((2, 2)))
        assert m.connected_components() == [[0, 1], [2, 3]]


class TestEnergy:
    def test_energy_value(self, mrf):
        # unary: 0.0 + 0.0 + 0.5 ; pairwise: edge0[0,1]=1, edge1[1,0]=0
        assert mrf.energy([0, 1, 0]) == pytest.approx(1.5)

    def test_energy_wrong_length(self, mrf):
        with pytest.raises(MRFError):
            mrf.energy([0, 0])

    def test_energy_label_out_of_range(self, mrf):
        with pytest.raises(MRFError):
            mrf.energy([0, 3, 0])

    def test_trivial_lower_bound(self, mrf):
        bound = mrf.trivial_lower_bound()
        assert bound <= mrf.energy([0, 0, 0])
        assert bound == pytest.approx(0.0 + 0.0 + 0.5 + 0.0 + 0.0)
