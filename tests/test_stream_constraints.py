"""Tests for constraint-delta streaming (pin/forbid/combination events)."""

import numpy as np
import pytest

from repro.core.costs import HARD_COST, assignment_energy, build_mrf
from repro.core.diversify import diversify
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.model import Network, NetworkError
from repro.nvd.similarity import SimilarityTable
from repro.stream import (
    AllowRange,
    ChurnConfig,
    CombinationUpdate,
    DynamicDiversifier,
    ForbidRange,
    HostJoin,
    HostLeave,
    LinkAdd,
    LinkRemove,
    PinService,
    SimilarityUpdate,
    StreamPlan,
    UnpinService,
    apply_event,
    random_churn_trace,
    replay_trace,
)


def workload(hosts=30, degree=2, services=3, pps=6, density=0.3, seed=0):
    """The sparse, well-colorable family of the warm/cold parity contract."""
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        products_per_service=pps, similarity_density=density, seed=seed,
    )
    return random_network(config), random_similarity(config)


def tiny_network():
    net = Network()
    spec = {"os": ("w", "l", "m"), "db": ("p", "q", "r")}
    for i in range(4):
        net.add_host(f"h{i}", spec)
    net.add_links([("h0", "h1"), ("h1", "h2"), ("h2", "h3")])
    table = SimilarityTable(pairs={("w", "l"): 0.5, ("p", "q"): 0.4})
    return net, table


def constraint_trace(net, events=12, seed=0, **overrides):
    """A mixed churn + constraint trace over the sparse family."""
    options = dict(events=events, seed=seed, constraint_weight=4.0)
    options.update(overrides)
    return random_churn_trace(net, ChurnConfig(**options))


class TestConstraintEvents:
    def test_describe_strings(self):
        assert "pin h0.os=w" in PinService("h0", "os", "w").describe()
        assert "unpin h0.os" in UnpinService("h0", "os").describe()
        assert "forbid h0.os!=w" in ForbidRange("h0", "os", "w").describe()
        assert "allow h0.os=w" in AllowRange("h0", "os", "w").describe()
        combo = AvoidCombination("h0", "os", "w", "db", "p")
        assert "combo+" in CombinationUpdate(combo).describe()
        assert "combo-" in CombinationUpdate(combo, add=False).describe()

    def test_apply_pin_unpin(self):
        net, _ = tiny_network()
        constraints = ConstraintSet()
        apply_event(net, None, PinService("h0", "os", "w"), constraints)
        assert list(constraints) == [FixProduct("h0", "os", "w")]
        # Re-pin replaces, never stacks.
        apply_event(net, None, PinService("h0", "os", "l"), constraints)
        assert list(constraints) == [FixProduct("h0", "os", "l")]
        apply_event(net, None, UnpinService("h0", "os"), constraints)
        assert len(constraints) == 0
        # Unpinning an unpinned variable is a no-op.
        apply_event(net, None, UnpinService("h0", "os"), constraints)
        assert len(constraints) == 0

    def test_apply_forbid_allow(self):
        net, _ = tiny_network()
        constraints = ConstraintSet()
        apply_event(net, None, ForbidRange("h1", "db", "p"), constraints)
        assert list(constraints) == [ForbidProduct("h1", "db", "p")]
        apply_event(net, None, AllowRange("h1", "db", "p"), constraints)
        assert len(constraints) == 0

    def test_apply_combination(self):
        net, _ = tiny_network()
        constraints = ConstraintSet()
        combo = AvoidCombination("h2", "os", "w", "db", "p")
        apply_event(net, None, CombinationUpdate(combo), constraints)
        assert list(constraints) == [combo]
        apply_event(net, None, CombinationUpdate(combo, add=False), constraints)
        assert len(constraints) == 0
        with pytest.raises(ValueError):
            apply_event(
                net, None, CombinationUpdate(combo, add=False), constraints
            )

    def test_same_service_combination_rejected(self):
        # A rule coupling a service with itself would be a self-loop edge;
        # it must be rejected at event time, not crash a later HostJoin.
        net, _ = tiny_network()
        constraints = ConstraintSet()
        combo = RequireCombination(GLOBAL, "os", "w", "os", "l")
        with pytest.raises(NetworkError, match="itself"):
            apply_event(net, None, CombinationUpdate(combo), constraints)
        engine = DynamicDiversifier(*tiny_network())
        engine.solve()
        with pytest.raises(NetworkError, match="itself"):
            engine.apply(CombinationUpdate(combo))

    def test_constraint_events_need_a_set(self):
        net, _ = tiny_network()
        with pytest.raises(ValueError):
            apply_event(net, None, PinService("h0", "os", "w"))

    def test_invalid_product_raises(self):
        net, _ = tiny_network()
        constraints = ConstraintSet()
        with pytest.raises(NetworkError):
            apply_event(net, None, PinService("h0", "os", "nope"), constraints)
        with pytest.raises(NetworkError):
            apply_event(net, None, ForbidRange("h0", "os", "nope"), constraints)

    def test_host_leave_prunes_constraints(self):
        net, _ = tiny_network()
        constraints = ConstraintSet(
            [
                FixProduct("h3", "os", "w"),
                ForbidProduct("h0", "db", "p"),
                AvoidCombination("h3", "os", "w", "db", "p"),
                AvoidCombination(GLOBAL, "os", "m", "db", "r"),
            ]
        )
        apply_event(net, None, HostLeave("h3"), constraints)
        assert "h3" not in net
        assert list(constraints) == [
            ForbidProduct("h0", "db", "p"),
            AvoidCombination(GLOBAL, "os", "m", "db", "r"),
        ]


class TestConstraintSetPlumbing:
    def test_remove_and_copy(self):
        fix = FixProduct("h0", "os", "w")
        constraints = ConstraintSet([fix])
        clone = constraints.copy()
        constraints.remove(fix)
        assert len(constraints) == 0 and len(clone) == 1
        with pytest.raises(ValueError):
            constraints.remove(fix)

    def test_discard_where_and_lookups(self):
        constraints = ConstraintSet(
            [
                FixProduct("h0", "os", "w"),
                ForbidProduct("h0", "os", "l"),
                ForbidProduct("h1", "os", "l"),
                AvoidCombination("h0", "os", "w", "db", "p"),
            ]
        )
        assert [
            c.product for c in constraints.unary_constraints_for("h0", "os")
        ] == ["w", "l"]
        assert len(constraints.combination_constraints()) == 1
        dropped = constraints.discard_where(
            lambda c: isinstance(c, ForbidProduct)
        )
        assert len(dropped) == 2 and len(constraints) == 2


class TestStreamPlanConstraints:
    def test_initial_build_matches_batch_builder(self):
        net, table = workload(seed=1)
        host = net.hosts[0]
        products = net.candidates(host, "s0")
        constraints = ConstraintSet(
            [
                FixProduct(host, "s0", products[0]),
                ForbidProduct(net.hosts[1], "s1",
                              net.candidates(net.hosts[1], "s1")[2]),
                AvoidCombination(GLOBAL, "s0", products[1], "s1",
                                 net.candidates(host, "s1")[0]),
            ]
        )
        plan = StreamPlan(net, table, constraints=constraints.copy())
        build = build_mrf(net, table, constraints=constraints)
        assert plan.plan.node_count == build.mrf.node_count
        assert plan.plan.edge_count == build.mrf.edge_count
        rng = np.random.default_rng(0)
        labels = rng.integers(0, plan.plan.label_counts)
        # Relative tolerance: random labels can pay HARD_COST-scale masks,
        # where float summation order costs ~1e-8 absolute.
        assert plan.plan.energy(labels) == pytest.approx(
            build.mrf.energy([int(x) for x in labels]), rel=1e-12
        )

    @pytest.mark.parametrize("tseed", range(3))
    def test_patched_plan_matches_rebuild(self, tseed):
        net, table = workload(seed=tseed)
        plan = StreamPlan(net, table)
        trace = constraint_trace(net, events=14, seed=tseed)
        for event in trace:
            plan.apply(event)
        plan.flush()
        build = build_mrf(net, table, constraints=plan.constraints)
        assert plan.plan.node_count == build.mrf.node_count
        assert plan.plan.edge_count == build.mrf.edge_count
        rng = np.random.default_rng(1)
        labels = rng.integers(0, plan.plan.label_counts)
        assert plan.plan.energy(labels) == pytest.approx(
            build.mrf.energy([int(x) for x in labels]), rel=1e-12
        )

    def test_unary_mask_patch_is_in_place(self):
        net, table = workload(seed=3)
        plan = StreamPlan(net, table)
        arrays_before = plan.plan
        host = net.hosts[0]
        product = net.candidates(host, "s0")[0]
        plan.apply(PinService(host, "s0", product))
        assert plan.plan is arrays_before  # no structural rebuild
        node = plan.index[(host, "s0")]
        unary = plan.plan.unary[node, : plan.plan.label_counts[node]]
        assert unary[0] == pytest.approx(plan.unary_constant)
        assert np.all(unary[1:] >= HARD_COST)
        plan.apply(UnpinService(host, "s0"))
        assert plan.plan is arrays_before
        unary = plan.plan.unary[node, : plan.plan.label_counts[node]]
        assert np.all(unary == pytest.approx(plan.unary_constant))

    def test_combination_edges_track_rules(self):
        net, table = tiny_network()
        plan = StreamPlan(net, table)
        edges_before = plan.edge_count
        combo = AvoidCombination("h1", "os", "w", "db", "p")
        plan.apply(CombinationUpdate(combo))
        assert plan.edge_count == edges_before + 1
        assert plan.messages.shape[0] == 2 * plan.edge_count
        # A second rule on the same pair accumulates in place.
        other = AvoidCombination("h1", "os", "l", "db", "q")
        plan.apply(CombinationUpdate(other))
        assert plan.edge_count == edges_before + 1
        # Retiring both rules retires the edge.
        plan.apply(CombinationUpdate(combo, add=False))
        assert plan.edge_count == edges_before + 1
        plan.apply(CombinationUpdate(other, add=False))
        assert plan.edge_count == edges_before
        plan.flush()
        build = build_mrf(net, table, constraints=plan.constraints)
        assert plan.plan.edge_count == build.mrf.edge_count

    def test_stranding_pin_sets_flag(self):
        net, table = workload(seed=5)
        engine = DynamicDiversifier(net, table)
        engine.solve()
        host = engine.network.hosts[0]
        node = engine.plan.index[(host, "s0")]
        current = int(engine.plan.labels[node])
        products = engine.network.candidates(host, "s0")
        # Pinning the product already in use strands nothing...
        engine.apply(PinService(host, "s0", products[current]))
        assert not engine.plan.stranded
        # ... pinning a different one strands the previous label.
        other = products[(current + 1) % len(products)]
        engine.apply(PinService(host, "s0", other))
        assert engine.plan.stranded
        result = engine.solve()
        assert result.warm
        assert not engine.plan.stranded  # reset after the solve
        assert result.assignment.get(host, "s0") == other


class TestConstraintParity:
    """The tentpole contract: incremental energies equal a cold solve of
    the mutated network *and* constraint set along full event traces."""

    @pytest.mark.parametrize("wseed,tseed", [(0, 0), (1, 1), (2, 2), (3, 0)])
    def test_energy_parity_along_trace(self, wseed, tseed):
        net, table = workload(seed=wseed)
        trace = constraint_trace(net, events=10, seed=tseed)
        engine = DynamicDiversifier(net.copy(), table.copy())
        engine.solve()
        check_net, check_table = net.copy(), table.copy()
        check_cons = ConstraintSet()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event, check_cons)
            cold = diversify(
                check_net, check_table, constraints=check_cons,
                fast_path=False,
            )
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)
            assert result.energy == pytest.approx(
                assignment_energy(
                    check_net, check_table, result.assignment,
                    constraints=check_cons,
                ),
                abs=1e-9,
            )

    @pytest.mark.parametrize("wseed,tseed", [(0, 0), (2, 2)])
    def test_sharded_energy_parity_along_trace(self, wseed, tseed):
        net, table = workload(seed=wseed)
        trace = constraint_trace(net, events=10, seed=tseed)
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        engine.solve()
        check_net, check_table = net.copy(), table.copy()
        check_cons = ConstraintSet()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event, check_cons)
            cold = diversify(
                check_net, check_table, constraints=check_cons,
                fast_path=False,
            )
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)

    def test_bursty_constraint_load_parity(self):
        net, table = workload(seed=4)
        trace = random_churn_trace(
            net,
            ChurnConfig(events=18, seed=11, weights=(0, 0, 0, 0, 0),
                        constraint_weight=1.0, constraint_burst=3),
        )
        engine = DynamicDiversifier(net.copy(), table.copy())
        engine.solve()
        check_net, check_table = net.copy(), table.copy()
        check_cons = ConstraintSet()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event, check_cons)
            cold = diversify(
                check_net, check_table, constraints=check_cons,
                fast_path=False,
            )
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)

    def test_bp_constraint_parity(self):
        net, table = workload(hosts=16, seed=8)
        engine = DynamicDiversifier(net, table, solver="bp")
        engine.solve()
        host = engine.network.hosts[0]
        product = engine.network.candidates(host, "s0")[1]
        engine.apply(PinService(host, "s0", product))
        result = engine.solve()
        assert result.warm
        assert result.energy == pytest.approx(
            assignment_energy(
                net, table, result.assignment,
                constraints=engine.constraints,
            ),
            abs=1e-9,
        )

    def test_global_combination_with_host_join(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net.copy(), table.copy(),
                                    rebuild_fraction=0.6)
        engine.solve()
        host = engine.network.hosts[0]
        combo = AvoidCombination(
            GLOBAL, "s0", engine.network.candidates(host, "s0")[0],
            "s1", engine.network.candidates(host, "s1")[0],
        )
        template = engine.network.hosts[1]
        join = HostJoin(
            "newbie",
            services=tuple(
                (service, engine.network.candidates(template, service))
                for service in engine.network.services_of(template)
            ),
            links=(template,),
        )
        check_net, check_table = net.copy(), table.copy()
        check_cons = ConstraintSet()
        for event in (CombinationUpdate(combo), join):
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event, check_cons)
            cold = diversify(
                check_net, check_table, constraints=check_cons,
                fast_path=False,
            )
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)
        # The newcomer carries the GLOBAL rule's table.
        assert ("newbie", "s0", "s1") in engine.plan._combo_cids or (
            "newbie", "s1", "s0"
        ) in engine.plan._combo_cids

    def test_bulk_load_falls_back_to_cold(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net, table, rebuild_fraction=0.25)
        engine.solve()
        variables = [
            (host, "s0") for host in engine.network.hosts[:30]
        ]  # 30 of 90 variables > 25%
        for host, service in variables:
            product = engine.network.candidates(host, service)[0]
            engine.apply(ForbidRange(host, service, product))
        result = engine.solve()
        assert not result.warm
        assert result.energy == pytest.approx(
            assignment_energy(
                net, table, result.assignment,
                constraints=engine.constraints,
            ),
            abs=1e-9,
        )


class TestShardedConstraintDeltas:
    def test_constraint_delta_resolves_only_touched_shards(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        first = engine.solve()
        assert first.shards_total > 1
        host = engine.network.hosts[0]
        product = engine.network.candidates(host, "s0")[1]
        engine.apply(ForbidRange(host, "s0", product))
        result = engine.solve()
        assert result.warm
        assert 0 < result.shards_solved < result.shards_total

    def test_clean_shard_state_byte_identical(self):
        """A constraint delta in one zone leaves every other shard's
        messages and labels byte-for-byte untouched."""
        net, table = workload(seed=7)
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        engine.solve()
        plan = engine.plan

        def edge_rows():
            return {
                (plan._edge_keys[e], plan.variables[plan._edge_first[e]]):
                    plan.messages[2 * e : 2 * e + 2].copy()
                for e in range(plan.edge_count)
            }

        rows_before = edge_rows()
        labels_before = {
            key: int(plan.labels[node])
            for node, key in enumerate(plan.variables)
        }
        host = engine.network.hosts[0]
        node = plan.index[(host, "s0")]
        current = int(plan.labels[node])
        products = engine.network.candidates(host, "s0")
        engine.apply(
            PinService(host, "s0", products[(current + 1) % len(products)])
        )
        touched = set(plan.touched)
        assert touched == {(host, "s0")}
        result = engine.solve()
        assert result.warm
        assert 0 < result.shards_solved < result.shards_total

        from repro.mrf.partition import split_parts

        unaries, first, second, cid, matrices = plan.parts()
        partition = split_parts(unaries, first, second, cid, matrices,
                                lmax=plan.messages.shape[1])
        clean_nodes = set()
        clean_count = 0
        for shard in partition:
            keys = {plan.variables[int(n)] for n in shard.nodes}
            if not keys & touched:
                clean_count += 1
                clean_nodes.update(int(n) for n in shard.nodes)
        assert clean_count == result.shards_total - result.shards_solved
        assert clean_nodes

        for node in clean_nodes:
            key = plan.variables[node]
            assert int(plan.labels[node]) == labels_before[key]
        rows_after = edge_rows()
        compared = 0
        for e in range(plan.edge_count):
            if plan._edge_first[e] in clean_nodes:
                identity = (plan._edge_keys[e],
                            plan.variables[plan._edge_first[e]])
                assert np.array_equal(rows_after[identity],
                                      rows_before[identity])
                compared += 1
        assert compared > 0


class TestTraceBackwardCompatibility:
    #: the exact seed-3 draw sequence of the pre-constraint generator.
    GOLDEN_SEED3 = [
        LinkAdd(a="h17", b="h4"),
        LinkAdd(a="h19", b="h15"),
        LinkRemove(a="h10", b="h11"),
        LinkRemove(a="h5", b="h7"),
        SimilarityUpdate(product_a="s0_p4", product_b="s0_p1", value=0.173),
        SimilarityUpdate(product_a="s0_p4", product_b="s0_p3", value=0.357),
        SimilarityUpdate(product_a="s2_p5", product_b="s2_p1", value=0.781),
        LinkRemove(a="h23", b="h24"),
    ]

    def test_golden_default_draw_sequence(self):
        net, _ = workload()
        trace = random_churn_trace(net, ChurnConfig(events=8, seed=3))
        assert trace == self.GOLDEN_SEED3

    def test_zero_weight_is_the_default(self):
        net, _ = workload()
        plain = random_churn_trace(net, ChurnConfig(events=15, seed=3))
        explicit = random_churn_trace(
            net,
            ChurnConfig(events=15, seed=3, constraint_weight=0.0,
                        constraint_burst=1),
        )
        assert plain == explicit

    def test_constraint_traces_deterministic(self):
        net, _ = workload()
        config = ChurnConfig(events=15, seed=2, constraint_weight=3.0,
                             constraint_burst=2)
        assert random_churn_trace(net, config) == random_churn_trace(
            net, config
        )

    def test_constraint_trace_replays_cleanly(self):
        net, table = workload(seed=2)
        trace = constraint_trace(net, events=25, seed=7)
        constraints = ConstraintSet()
        for event in trace:
            apply_event(net, table, event, constraints)  # must never raise

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(constraint_weight=-1.0)
        with pytest.raises(ValueError):
            ChurnConfig(constraint_burst=0)
        with pytest.raises(ValueError):
            ChurnConfig(weights=(0, 0, 0, 0, 0), constraint_weight=0.0)
        ChurnConfig(weights=(0, 0, 0, 0, 0), constraint_weight=1.0)


class TestReplayWithConstraints:
    def test_replay_records_constraint_events(self):
        net, table = workload(hosts=12, seed=9)
        trace = constraint_trace(net, events=5, seed=9)
        report = replay_trace(net, table, trace, compare_cold=True)
        assert len(report.records) == 5
        for record in report.records:
            assert record.cold_energy == pytest.approx(
                record.energy, abs=1e-9
            )

    def test_replay_with_initial_constraints(self):
        net, table = workload(hosts=12, seed=9)
        host = net.hosts[0]
        constraints = ConstraintSet(
            [FixProduct(host, "s0", net.candidates(host, "s0")[0])]
        )
        trace = constraint_trace(net, events=4, seed=3)
        report = replay_trace(
            net, table, trace, constraints=constraints, compare_cold=True
        )
        for record in report.records:
            assert record.cold_energy == pytest.approx(
                record.energy, abs=1e-9
            )

    def test_require_combination_streams(self):
        net, table = tiny_network()
        engine = DynamicDiversifier(net.copy(), table.copy(),
                                    rebuild_fraction=1.0)
        engine.solve()
        combo = RequireCombination("h1", "os", "w", "db", "r")
        check_net, check_table = net.copy(), table.copy()
        check_cons = ConstraintSet()
        for event in (
            PinService("h1", "os", "w"),
            CombinationUpdate(combo),
            CombinationUpdate(combo, add=False),
            UnpinService("h1", "os"),
        ):
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event, check_cons)
            cold = diversify(
                check_net, check_table, constraints=check_cons,
                fast_path=False,
            )
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)
