"""Tests for the attack-BN inference (repro.metrics.bayes)."""

import random

import pytest

from repro.core.baselines import mono_assignment
from repro.metrics.bayes import (
    AttackBayesianNetwork,
    compromise_probability,
    monte_carlo_compromise_probability,
)
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.network.topologies import chain_network, tree_network
from repro.nvd.similarity import SimilarityTable
from repro.sim.malware import InfectionModel


def flat_model(rate):
    """All edges fire with the same probability (mono assignment)."""
    return InfectionModel(similarity=SimilarityTable(), p_avg=rate, p_max=rate)


class TestLayering:
    def test_bfs_layers(self):
        net = chain_network(4)
        bn = AttackBayesianNetwork(net, mono_assignment(net), flat_model(0.5), "h0")
        assert [bn.layer_of(f"h{i}") for i in range(4)] == [0, 1, 2, 3]

    def test_parents_point_towards_entry(self):
        net = chain_network(4)
        bn = AttackBayesianNetwork(net, mono_assignment(net), flat_model(0.5), "h0")
        assert bn.parents_of("h2") == ["h1"]
        assert bn.parents_of("h0") == []

    def test_unreachable_component(self):
        net = Network()
        net.add_host("a", {"svc": ["x"]})
        net.add_host("b", {"svc": ["x"]})
        net.add_host("isolated", {"svc": ["x"]})
        net.add_link("a", "b")
        assignment = ProductAssignment(
            net, {("a", "svc"): "x", ("b", "svc"): "x", ("isolated", "svc"): "x"}
        )
        bn = AttackBayesianNetwork(net, assignment, flat_model(0.5), "a")
        assert bn.layer_of("isolated") is None
        assert bn.probability("isolated") == 0.0

    def test_same_layer_ties_broken_by_host_order(self):
        # Diamond: entry -> {m1, m2} -> sink; m1-m2 edge is same-layer.
        net = Network()
        for name in ("entry", "m1", "m2", "sink"):
            net.add_host(name, {"svc": ["x"]})
        net.add_links([("entry", "m1"), ("entry", "m2"), ("m1", "m2"), ("m2", "sink")])
        assignment = ProductAssignment(net, {(h, "svc"): "x" for h in net.hosts})
        bn = AttackBayesianNetwork(net, assignment, flat_model(0.5), "entry")
        assert bn.parents_of("m2") == ["entry", "m1"]


class TestInference:
    def test_chain_probability_is_rate_power(self):
        net = chain_network(4)
        p = compromise_probability(
            net, mono_assignment(net), flat_model(0.5), "h0", "h3"
        )
        assert p == pytest.approx(0.5**3)

    def test_entry_prior_scales(self):
        net = chain_network(3)
        bn = AttackBayesianNetwork(
            net, mono_assignment(net), flat_model(0.5), "h0", entry_prior=0.5
        )
        assert bn.probability("h0") == 0.5
        assert bn.probability("h2") == pytest.approx(0.5 * 0.25)

    def test_invalid_prior_rejected(self):
        net = chain_network(3)
        with pytest.raises(ValueError):
            AttackBayesianNetwork(
                net, mono_assignment(net), flat_model(0.5), "h0", entry_prior=1.5
            )

    def test_unknown_entry_rejected(self):
        net = chain_network(3)
        with pytest.raises(KeyError):
            AttackBayesianNetwork(net, mono_assignment(net), flat_model(0.5), "zz")

    def test_parallel_paths_noisy_or(self):
        # entry -> a -> target and entry -> b -> target, all edges at 0.5:
        # P(target) = 1 - (1 - 0.25)^2.
        net = Network()
        for name in ("entry", "a", "b", "target"):
            net.add_host(name, {"svc": ["x"]})
        net.add_links([("entry", "a"), ("entry", "b"), ("a", "target"), ("b", "target")])
        assignment = ProductAssignment(net, {(h, "svc"): "x" for h in net.hosts})
        p = compromise_probability(net, assignment, flat_model(0.5), "entry", "target")
        assert p == pytest.approx(1 - 0.75**2)

    def test_probabilities_bounded(self):
        net = tree_network(depth=3)
        probabilities = AttackBayesianNetwork(
            net, mono_assignment(net), flat_model(0.7), "h0"
        ).probabilities()
        assert all(0.0 <= p <= 1.0 for p in probabilities.values())

    def test_monotone_in_similarity(self):
        net = chain_network(4, services={"svc": ["x", "y"]})
        alternating = ProductAssignment(net)
        for i, host in enumerate(net.hosts):
            alternating.assign(host, "svc", "x" if i % 2 == 0 else "y")
        low = InfectionModel(
            similarity=SimilarityTable(pairs={("x", "y"): 0.1}), p_avg=0.1, p_max=0.9
        )
        high = InfectionModel(
            similarity=SimilarityTable(pairs={("x", "y"): 0.8}), p_avg=0.1, p_max=0.9
        )
        p_low = compromise_probability(net, alternating, low, "h0", "h3")
        p_high = compromise_probability(net, alternating, high, "h0", "h3")
        assert p_low < p_high


class TestMonteCarlo:
    def test_agrees_with_bn_on_trees(self):
        random.seed(0)
        for seed in range(3):
            net = tree_network(depth=2, branching=2)
            model = flat_model(0.4)
            assignment = mono_assignment(net)
            exact = compromise_probability(net, assignment, model, "h0", "h5")
            estimate = monte_carlo_compromise_probability(
                net, assignment, model, "h0", "h5", samples=20000, seed=seed
            )
            assert estimate == pytest.approx(exact, abs=0.02)

    def test_chain_estimate(self):
        net = chain_network(3)
        estimate = monte_carlo_compromise_probability(
            net, mono_assignment(net), flat_model(0.5), "h0", "h2",
            samples=20000, seed=1,
        )
        assert estimate == pytest.approx(0.25, abs=0.02)

    def test_validation(self):
        net = chain_network(3)
        with pytest.raises(ValueError):
            monte_carlo_compromise_probability(
                net, mono_assignment(net), flat_model(0.5), "h0", "h2", samples=0
            )
        with pytest.raises(KeyError):
            monte_carlo_compromise_probability(
                net, mono_assignment(net), flat_model(0.5), "h0", "zz"
            )
