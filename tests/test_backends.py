"""Tests for the kernel-backend registry and numpy/native bit-parity.

Two layers:

- registry semantics (strict :func:`get_backend`, env-var selection,
  process default precedence, graceful warn-once fallback) — these run
  everywhere;
- bit-for-bit parity of the ``native`` backend against the NumPy
  reference across monolithic TRW-S, BP, sharded solves and warm-start
  streaming — these auto-skip where neither Numba nor a C compiler is
  available.  A toolchain-free logic test runs the shared loop bodies
  (:mod:`repro.mrf.backends._kernels_py`) un-jitted so the kernel logic
  is still covered on bare machines.
"""

import warnings

import numpy as np
import pytest

import repro.mrf.backends as backends
from helpers import make_random_mrf
from repro.mrf.backends import (
    KernelBackend,
    NativeBackend,
    active_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.mrf.backends import _kernels_py
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.sharded import ShardedSolver
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays, SolverScratch

NATIVE_AVAILABLE = get_backend("native").available

BACKENDS = [
    "numpy",
    pytest.param(
        "native",
        marks=pytest.mark.skipif(
            not NATIVE_AVAILABLE,
            reason="native backend needs Numba or a C compiler",
        ),
    ),
]


@pytest.fixture(autouse=True)
def _clean_selection(monkeypatch):
    """Isolate every test from ambient backend selection state."""
    monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
    monkeypatch.setattr(backends, "_default", None)
    monkeypatch.setattr(backends, "_warned", set())


class TestRegistry:
    def test_available_backends_lists_both(self):
        listed = available_backends()
        assert listed["numpy"] is True
        assert "native" in listed

    def test_get_backend_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend 'bogus'"):
            get_backend("bogus")

    def test_resolve_backend_unknown_name_raises(self):
        # Explicit unknown names are misconfiguration, not a missing
        # toolchain: strict even on the graceful path.
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("bogus")

    def test_resolve_backend_passes_instances_through(self):
        numpy_backend = get_backend("numpy")
        assert resolve_backend(numpy_backend) is numpy_backend

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "numpy")
        assert resolve_backend().name == "numpy"

    def test_env_var_unknown_name_falls_back(self, monkeypatch):
        # A REPRO_BACKEND typo degrades like a missing toolchain instead
        # of crashing every solve; explicit names stay strict.
        monkeypatch.setenv(backends.BACKEND_ENV, "bogus")
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            assert resolve_backend().name == "numpy"

    def test_env_var_auto_matches_default(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "auto")
        assert resolve_backend() is resolve_backend(None)

    def test_default_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "native")
        set_default_backend("numpy")
        assert resolve_backend().name == "numpy"

    def test_explicit_argument_beats_default(self):
        set_default_backend("numpy")
        if NATIVE_AVAILABLE:
            assert resolve_backend("native").name == "native"
        assert resolve_backend("numpy").name == "numpy"

    def test_set_default_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            set_default_backend("bogus")
        assert backends._default is None

    def test_set_default_backend_auto_clears(self):
        set_default_backend("numpy")
        set_default_backend("auto")
        assert backends._default is None
        set_default_backend("numpy")
        set_default_backend(None)
        assert backends._default is None

    def test_active_backend_name_with_explicit_choice(self):
        assert active_backend_name("numpy") == "numpy"

    def test_auto_prefers_native_when_available(self):
        resolved = resolve_backend("auto")
        if NATIVE_AVAILABLE:
            assert resolved.name == "native"
        else:
            assert resolved.name == "numpy"


class _UnavailableBackend(KernelBackend):
    """A registered backend whose toolchain is 'missing'."""

    name = "test-unavailable"
    kind = "stub"

    @property
    def available(self) -> bool:
        return False


class TestGracefulFallback:
    @pytest.fixture()
    def unavailable(self):
        register_backend(_UnavailableBackend())
        yield "test-unavailable"
        backends._REGISTRY.pop("test-unavailable", None)

    def test_falls_back_to_numpy_with_warning(self, unavailable):
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            resolved = resolve_backend(unavailable)
        assert resolved.name == "numpy"

    def test_warns_only_once_per_backend(self, unavailable):
        with pytest.warns(RuntimeWarning):
            resolve_backend(unavailable)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend(unavailable).name == "numpy"

    def test_unavailable_env_var_still_solves(self, unavailable, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, unavailable)
        mrf = make_random_mrf(6, 0.5, 3, seed=0)
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            result = TRWSSolver(max_iterations=3).solve(mrf)
        assert result.labels == TRWSSolver(max_iterations=3).solve(mrf).labels

    def test_unavailable_instance_falls_back(self):
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            assert resolve_backend(_UnavailableBackend()).name == "numpy"


def _instances():
    """Small but structurally varied parity instances."""
    return [
        make_random_mrf(10, 0.4, 4, seed=1),
        make_random_mrf(14, 0.25, 3, seed=2),
        make_random_mrf(9, 0.0, 3, seed=3, tree=True),
        make_random_mrf(1, 0.0, 2, seed=4),
    ]


def _assert_results_identical(got, want):
    assert got.labels == want.labels
    assert got.energy == want.energy
    assert got.lower_bound == want.lower_bound
    assert got.iterations == want.iterations
    assert got.converged == want.converged
    assert got.energy_trace == want.energy_trace
    assert got.bound_trace == want.bound_trace


@pytest.mark.parametrize("backend", BACKENDS)
class TestSolverParity:
    """The compiled tier must be bit-for-bit the NumPy reference."""

    def test_trws_monolithic(self, backend):
        for mrf in _instances():
            plan = MRFArrays(mrf)
            reference_messages = plan.zero_messages()
            messages = plan.zero_messages()
            solver = TRWSSolver(max_iterations=8, seed=0)
            reference = solver.solve_arrays(
                plan, messages=reference_messages, backend="numpy"
            )
            result = solver.solve_arrays(
                plan, messages=messages, backend=backend
            )
            _assert_results_identical(result, reference)
            np.testing.assert_array_equal(messages, reference_messages)

    def test_bp_damped_and_undamped(self, backend):
        for damping in (0.0, 0.5):
            for mrf in _instances():
                plan = MRFArrays(mrf)
                reference_messages = plan.zero_messages()
                messages = plan.zero_messages()
                solver = LoopyBPSolver(max_iterations=12, damping=damping)
                reference = solver.solve_arrays(
                    plan, messages=reference_messages, backend="numpy"
                )
                result = solver.solve_arrays(
                    plan, messages=messages, backend=backend
                )
                _assert_results_identical(result, reference)
                np.testing.assert_array_equal(messages, reference_messages)

    def test_plan_primitives(self, backend):
        plan = MRFArrays(make_random_mrf(12, 0.35, 4, seed=6))
        rng = np.random.default_rng(0)
        messages = rng.uniform(-1.0, 1.0, size=(2 * plan.edge_count, plan.lmax))
        beliefs = np.where(
            np.isfinite(plan.unary_inf),
            rng.uniform(0.0, 2.0, size=plan.unary_inf.shape),
            np.inf,
        )
        reference = plan.decode(beliefs, messages, backend="numpy")
        np.testing.assert_array_equal(
            plan.decode(beliefs, messages, backend=backend), reference
        )
        assert plan.dual_bound(
            messages, beliefs, chunk=5, backend=backend
        ) == plan.dual_bound(messages, beliefs, chunk=5, backend="numpy")
        np.testing.assert_array_equal(
            plan.icm(reference, backend=backend),
            plan.icm(reference, backend="numpy"),
        )

    def test_sharded_via_global_default(self, backend):
        mrf = make_random_mrf(18, 0.15, 3, seed=7)
        solver = ShardedSolver(
            solver="trws", min_shard_nodes=1, executor="serial",
            seed=0, max_iterations=6,
        )
        set_default_backend("numpy")
        reference = solver.solve(mrf)
        set_default_backend(backend)
        result = solver.solve(mrf)
        _assert_results_identical(result, reference)

    def test_warm_start_streaming(self, backend):
        """Cost patch + warm re-solve from caller-owned messages."""
        mrf = make_random_mrf(12, 0.35, 4, seed=5)

        def run(chosen):
            plan = MRFArrays(mrf)
            messages = plan.zero_messages()
            solver = TRWSSolver(max_iterations=6, seed=0)
            cold = solver.solve_arrays(
                plan, messages=messages, backend=chosen
            )
            cid = int(plan.edge_cid[0])
            rows = int(plan.label_counts[plan.edge_first[0]])
            cols = int(plan.label_counts[plan.edge_second[0]])
            patch = np.linspace(0.0, 1.0, rows * cols).reshape(rows, cols)
            plan.set_cost_matrix(cid, patch)
            plan.set_unary(0, plan.unary[0, : int(plan.label_counts[0])] + 0.25)
            warm = solver.solve_arrays(
                plan, messages=messages, default_inits=False, backend=chosen
            )
            return cold, warm, messages

        ref_cold, ref_warm, ref_messages = run("numpy")
        cold, warm, messages = run(backend)
        _assert_results_identical(cold, ref_cold)
        _assert_results_identical(warm, ref_warm)
        np.testing.assert_array_equal(messages, ref_messages)

    def test_scratch_reuse_is_bit_identical(self, backend):
        mrf = make_random_mrf(11, 0.3, 4, seed=8)
        plan = MRFArrays(mrf)
        solver = TRWSSolver(max_iterations=5, seed=0)
        scratch = SolverScratch()
        # Warm the scratch on a different instance first so reuse paths run.
        solver.solve_arrays(
            MRFArrays(make_random_mrf(7, 0.5, 3, seed=9)),
            scratch=scratch, backend=backend,
        )
        with_scratch = solver.solve_arrays(plan, scratch=scratch, backend=backend)
        without = solver.solve_arrays(plan, backend=backend)
        _assert_results_identical(with_scratch, without)


class _PurePythonKernels:
    """The shared loop bodies, un-jitted — no toolchain required."""

    kind = "py"

    trws_send = staticmethod(_kernels_py.trws_send)
    condition = staticmethod(_kernels_py.condition)
    icm_condition = staticmethod(_kernels_py.icm_condition)
    bound_mins = staticmethod(_kernels_py.bound_mins)
    bp_beliefs = staticmethod(_kernels_py.bp_beliefs)
    bp_round = staticmethod(_kernels_py.bp_round)


def _pure_python_native() -> NativeBackend:
    backend = NativeBackend()
    backend._kernels = _PurePythonKernels()
    backend._resolved = True
    backend.kind = _PurePythonKernels.kind
    return backend


class TestPurePythonKernelBodies:
    """Cover the kernel loop logic even where numba/cc are absent."""

    def test_trws_parity_unjitted(self):
        shim = _pure_python_native()
        assert shim.available
        for mrf in (
            make_random_mrf(8, 0.4, 4, seed=11),
            make_random_mrf(7, 0.0, 3, seed=12, tree=True),
        ):
            plan = MRFArrays(mrf)
            reference_messages = plan.zero_messages()
            messages = plan.zero_messages()
            solver = TRWSSolver(max_iterations=4, seed=0)
            reference = solver.solve_arrays(
                plan, messages=reference_messages, backend="numpy"
            )
            result = solver.solve_arrays(plan, messages=messages, backend=shim)
            _assert_results_identical(result, reference)
            np.testing.assert_array_equal(messages, reference_messages)

    def test_bp_parity_unjitted(self):
        shim = _pure_python_native()
        plan = MRFArrays(make_random_mrf(8, 0.4, 3, seed=13))
        for damping in (0.0, 0.3):
            solver = LoopyBPSolver(max_iterations=6, damping=damping)
            reference = solver.solve_arrays(plan, backend="numpy")
            result = solver.solve_arrays(plan, backend=shim)
            _assert_results_identical(result, reference)

    def test_describe_reports_impl_kind(self):
        assert _pure_python_native().describe() == "native (py)"


class TestNativeFallbackGuards:
    """Plans the native kernels can't take must route to NumPy silently."""

    def test_oversized_lmax_falls_back(self):
        # The native tier caps label width at 64 (stack row buffers);
        # wider plans must silently run on the NumPy kernels.
        shim = _pure_python_native()
        rng = np.random.default_rng(14)
        unaries = [rng.uniform(0.0, 1.0, size=3) for _ in range(5)]
        matrices = [rng.uniform(0.0, 1.0, size=(3, 3)) for _ in range(4)]
        plan = MRFArrays.from_parts(
            unaries,
            np.arange(4), np.arange(1, 5), np.arange(4),
            matrices, lmax=70,
        )
        reference_messages = plan.zero_messages()
        messages = plan.zero_messages()
        solver = TRWSSolver(max_iterations=3, seed=0)
        reference = solver.solve_arrays(
            plan, messages=reference_messages, backend="numpy"
        )
        result = solver.solve_arrays(plan, messages=messages, backend=shim)
        _assert_results_identical(result, reference)
        np.testing.assert_array_equal(messages, reference_messages)

    def test_non_contiguous_messages_fall_back(self):
        shim = _pure_python_native()
        plan = MRFArrays(make_random_mrf(6, 0.5, 3, seed=15))
        wide = np.zeros((2 * plan.edge_count, 2 * plan.lmax))
        messages = wide[:, :: 2]  # valid shape, non-contiguous rows
        reference = plan.dual_bound(messages, plan.unary_inf, backend="numpy")
        assert plan.dual_bound(messages, plan.unary_inf, backend=shim) == reference
