"""Tests for the solver registry and result type (repro.mrf.solvers)."""

import pytest

from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import (
    SolverResult,
    available_solvers,
    get_solver,
    register_solver,
    solve,
)


class TestRegistry:
    def test_builtins_registered(self):
        assert {"trws", "bp", "icm", "exact"} <= set(available_solvers())

    def test_get_solver_instantiates(self):
        solver = get_solver("trws", max_iterations=7)
        assert solver.max_iterations == 7

    def test_unknown_name_raises_with_listing(self):
        with pytest.raises(KeyError, match="trws"):
            get_solver("does-not-exist")

    def test_custom_registration(self):
        class Stub:
            def solve(self, mrf):
                return SolverResult(labels=[0] * mrf.node_count, energy=0.0)

        register_solver("stub-test", Stub)
        try:
            assert "stub-test" in available_solvers()
            mrf = PairwiseMRF()
            mrf.add_node([0.0])
            assert solve(mrf, solver="stub-test").labels == [0]
        finally:
            from repro.mrf import solvers as module

            module._REGISTRY.pop("stub-test", None)

    def test_solve_convenience(self):
        mrf = PairwiseMRF()
        mrf.add_node([2.0, 1.0])
        result = solve(mrf, solver="exact")
        assert result.labels == [1]


class TestSolverResult:
    def test_gap_and_certification(self):
        result = SolverResult(labels=[0], energy=1.0, lower_bound=1.0)
        assert result.optimality_gap == 0.0
        assert result.is_certified_optimal()

    def test_uncertified_without_bound(self):
        result = SolverResult(labels=[0], energy=1.0)
        assert not result.is_certified_optimal()

    def test_uncertified_with_gap(self):
        result = SolverResult(labels=[0], energy=1.0, lower_bound=0.5)
        assert not result.is_certified_optimal()
        assert result.optimality_gap == pytest.approx(0.5)
