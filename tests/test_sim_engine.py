"""Tests for the propagation simulator (repro.sim.engine)."""

import pytest

from repro.core.baselines import mono_assignment
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable
from repro.sim.engine import PropagationSimulator
from repro.sim.malware import InfectionModel


def certain_model():
    """Every edge fires with probability p_max (mono products)."""
    return InfectionModel(similarity=SimilarityTable(), p_avg=1.0, p_max=1.0)


def blocked_model():
    return InfectionModel(similarity=SimilarityTable(), p_avg=0.0, p_max=0.0)


@pytest.fixture
def chain():
    net = chain_network(4)
    return net, mono_assignment(net)


class TestSingleRun:
    def test_certain_propagation_takes_path_length(self, chain):
        net, assignment = chain
        sim = PropagationSimulator(net, assignment, certain_model())
        run = sim.run("h0", "h3", seed=1)
        assert run.ticks_to_target == 3
        assert run.target_compromised
        assert run.infection_count() == 4

    def test_entry_equals_target(self, chain):
        net, assignment = chain
        sim = PropagationSimulator(net, assignment, certain_model())
        run = sim.run("h0", "h0")
        assert run.ticks_to_target == 0

    def test_zero_rates_extinguish(self, chain):
        net, assignment = chain
        sim = PropagationSimulator(net, assignment, blocked_model())
        run = sim.run("h0", "h3", max_ticks=50, seed=1)
        assert run.ticks_to_target is None
        assert run.infection_count() == 1
        assert run.total_ticks < 50  # early extinction, not cap exhaustion

    def test_tick_cap_censors(self, chain):
        net, assignment = chain
        model = InfectionModel(similarity=SimilarityTable(), p_avg=0.01, p_max=0.01)
        sim = PropagationSimulator(net, assignment, model)
        run = sim.run("h0", "h3", max_ticks=2, seed=3)
        if not run.target_compromised:
            assert run.total_ticks == 2

    def test_unknown_hosts_raise(self, chain):
        net, assignment = chain
        sim = PropagationSimulator(net, assignment, certain_model())
        with pytest.raises(KeyError):
            sim.run("nope", "h3")
        with pytest.raises(KeyError):
            sim.run("h0", "nope")

    def test_deterministic_per_seed(self, chain):
        net, assignment = chain
        model = InfectionModel(similarity=SimilarityTable(), p_avg=0.3, p_max=0.3)
        sim = PropagationSimulator(net, assignment, model)
        a = sim.run("h0", "h3", seed=42)
        b = sim.run("h0", "h3", seed=42)
        assert a.ticks_to_target == b.ticks_to_target
        assert a.infected_at == b.infected_at

    def test_infection_ticks_monotone_along_chain(self, chain):
        net, assignment = chain
        sim = PropagationSimulator(net, assignment, certain_model())
        run = sim.run("h0", "h3", seed=1)
        assert run.infected_at["h0"] < run.infected_at["h1"] < run.infected_at["h3"]


class TestBatch:
    def test_run_many_count_and_reproducibility(self, chain):
        net, assignment = chain
        model = InfectionModel(similarity=SimilarityTable(), p_avg=0.4, p_max=0.4)
        sim = PropagationSimulator(net, assignment, model)
        first = sim.run_many("h0", "h3", runs=20, seed=7)
        second = sim.run_many("h0", "h3", runs=20, seed=7)
        assert len(first) == 20
        assert [r.ticks_to_target for r in first] == [r.ticks_to_target for r in second]

    def test_run_many_validates(self, chain):
        net, assignment = chain
        sim = PropagationSimulator(net, assignment, certain_model())
        with pytest.raises(ValueError):
            sim.run_many("h0", "h3", runs=0)


class TestRates:
    def test_edge_rate_exposed(self):
        net = Network()
        net.add_host("a", {"svc": ["x", "y"]})
        net.add_host("b", {"svc": ["x", "y"]})
        net.add_link("a", "b")
        assignment = ProductAssignment(net, {("a", "svc"): "x", ("b", "svc"): "y"})
        model = InfectionModel(
            similarity=SimilarityTable(pairs={("x", "y"): 0.5}), p_avg=0.1, p_max=0.9
        )
        sim = PropagationSimulator(net, assignment, model)
        assert sim.edge_rate("a", "b") == pytest.approx(0.5)

    def test_diverse_slower_than_mono_on_average(self):
        net = chain_network(5, services={"svc": ["x", "y"]})
        similarity = SimilarityTable()  # distinct products share nothing
        model = InfectionModel(similarity=similarity, p_avg=0.15, p_max=0.95)
        mono = mono_assignment(net)
        alternating = ProductAssignment(net)
        for i, host in enumerate(net.hosts):
            alternating.assign(host, "svc", "x" if i % 2 == 0 else "y")
        sim_mono = PropagationSimulator(net, mono, model)
        sim_div = PropagationSimulator(net, alternating, model)
        mono_hits = sum(
            r.target_compromised
            for r in sim_mono.run_many("h0", "h4", runs=150, max_ticks=30, seed=1)
        )
        div_hits = sum(
            r.target_compromised
            for r in sim_div.run_many("h0", "h4", runs=150, max_ticks=30, seed=1)
        )
        assert mono_hits > div_hits
