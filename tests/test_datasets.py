"""Tests for the embedded paper data (repro.nvd.datasets)."""

import pytest

from repro.nvd.datasets import (
    BROWSER_PRODUCTS,
    CHROME,
    DATABASE_PRODUCTS,
    FIREFOX,
    IE8,
    IE10,
    MARIADB_10,
    MSSQL_08,
    MSSQL_14,
    MYSQL_55,
    OS_PRODUCTS,
    SEAMONKEY,
    UBUNTU_1404,
    WIN_7,
    WIN_10,
    WIN_81,
    WIN_XP,
    paper_browser_similarity,
    paper_database_similarity,
    paper_os_similarity,
    paper_similarity_table,
)


class TestOSTable:
    def test_all_products_present(self):
        table = paper_os_similarity()
        assert set(table.products) == set(OS_PRODUCTS)

    def test_published_values(self):
        table = paper_os_similarity()
        # Spot checks against the paper's Table II.
        assert table.get(WIN_7, WIN_XP) == pytest.approx(0.278)
        assert table.get(WIN_10, WIN_81) == pytest.approx(0.697)
        assert table.get(WIN_10, WIN_XP) == 0.0
        assert table.get(UBUNTU_1404, "Deb8.0") == pytest.approx(0.208)

    def test_shared_counts(self):
        table = paper_os_similarity()
        key = tuple(sorted((WIN_7, WIN_XP)))
        assert table.shared_counts[key] == 328

    def test_totals(self):
        table = paper_os_similarity()
        assert table.vulnerability_counts[WIN_7] == 1028
        assert table.vulnerability_counts[WIN_XP] == 479

    def test_cross_family_zero(self):
        table = paper_os_similarity()
        assert table.get(WIN_7, UBUNTU_1404) == 0.0


class TestBrowserTable:
    def test_all_products_present(self):
        table = paper_browser_similarity()
        assert set(table.products) == set(BROWSER_PRODUCTS)

    def test_published_values(self):
        table = paper_browser_similarity()
        assert table.get(IE8, IE10) == pytest.approx(0.386)
        assert table.get(FIREFOX, SEAMONKEY) == pytest.approx(0.450)
        assert table.get(CHROME, FIREFOX) == pytest.approx(0.005)
        assert table.get(IE8, CHROME) == 0.0

    def test_opera_seamonkey_typo_corrected(self):
        # The paper prints 1.00 for this cell (a typesetting slip); the
        # curated table uses a small value consistent with the row.
        table = paper_browser_similarity()
        assert table.get("Opera", SEAMONKEY) < 0.05


class TestDatabaseTable:
    def test_all_products_present(self):
        table = paper_database_similarity()
        assert set(table.products) == set(DATABASE_PRODUCTS)

    def test_lineage_structure(self):
        table = paper_database_similarity()
        # Fork/lineage overlap is high, cross-vendor overlap is zero.
        assert table.get(MYSQL_55, MARIADB_10) > 0.3
        assert table.get(MSSQL_08, MSSQL_14) > 0.2
        assert table.get(MSSQL_14, MYSQL_55) == 0.0


class TestMergedTable:
    def test_union_of_products(self):
        table = paper_similarity_table()
        expected = set(OS_PRODUCTS) | set(BROWSER_PRODUCTS) | set(DATABASE_PRODUCTS)
        assert set(table.products) == expected

    def test_values_preserved(self):
        table = paper_similarity_table()
        assert table.get(WIN_7, WIN_XP) == pytest.approx(0.278)
        assert table.get(IE8, IE10) == pytest.approx(0.386)
        assert table.get(MYSQL_55, MARIADB_10) == pytest.approx(0.388)

    def test_cross_category_zero(self):
        table = paper_similarity_table()
        assert table.get(WIN_7, CHROME) == 0.0
        assert table.get(IE8, MSSQL_14) == 0.0

    def test_all_values_bounded(self):
        table = paper_similarity_table()
        products = table.products
        for i, a in enumerate(products):
            for b in products[i:]:
                assert 0.0 <= table.get(a, b) <= 1.0

    def test_format_renders_lower_triangle(self):
        rendered = paper_os_similarity().format_table()
        lines = rendered.splitlines()
        assert len(lines) == len(OS_PRODUCTS) + 1
        assert "0.278" in rendered
