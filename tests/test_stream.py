"""Tests for the incremental diversification engine (repro.stream)."""

import numpy as np
import pytest

from repro.core.costs import assignment_energy, build_mrf
from repro.core.diversify import diversify
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable
from repro.stream import (
    ChurnConfig,
    DynamicDiversifier,
    HostJoin,
    HostLeave,
    LinkAdd,
    LinkRemove,
    SimilarityUpdate,
    StreamPlan,
    apply_event,
    random_churn_trace,
    replay_trace,
)


def workload(hosts=30, degree=2, services=3, pps=6, density=0.3, seed=0):
    """The sparse, well-colorable family where cold TRW-S reliably finds
    the optimum — the basis of the warm/cold energy-parity contract."""
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        products_per_service=pps, similarity_density=density, seed=seed,
    )
    return random_network(config), random_similarity(config)


def tiny_network():
    net = Network()
    spec = {"os": ("w", "l", "m"), "db": ("p", "q", "r")}
    for i in range(4):
        net.add_host(f"h{i}", spec)
    net.add_links([("h0", "h1"), ("h1", "h2"), ("h2", "h3")])
    table = SimilarityTable(pairs={("w", "l"): 0.5, ("p", "q"): 0.4})
    return net, table


class TestEvents:
    def test_describe_strings(self):
        assert "join" in HostJoin("x", services=(("s", ("a", "b")),)).describe()
        assert "leave h1" in HostLeave("h1").describe()
        assert "h0--h1" in LinkAdd("h0", "h1").describe()
        assert "h0--h1" in LinkRemove("h0", "h1").describe()
        assert "a~b=0.500" in SimilarityUpdate("a", "b", 0.5).describe()

    def test_similarity_update_validation(self):
        with pytest.raises(ValueError):
            SimilarityUpdate("a", "a", 0.5)
        with pytest.raises(ValueError):
            SimilarityUpdate("a", "b", 1.5)

    def test_apply_each_kind(self):
        net, table = tiny_network()
        apply_event(net, table, LinkAdd("h0", "h2"))
        assert net.has_link("h0", "h2")
        apply_event(net, table, LinkRemove("h0", "h2"))
        assert not net.has_link("h0", "h2")
        apply_event(
            net, table,
            HostJoin("h4", services=(("os", ("w", "l", "m")),), links=("h0",)),
        )
        assert "h4" in net and net.has_link("h0", "h4")
        apply_event(net, table, HostLeave("h4"))
        assert "h4" not in net
        apply_event(net, table, SimilarityUpdate("w", "m", 0.7))
        assert table.get("w", "m") == 0.7

    def test_similarity_update_requires_table(self):
        net, _ = tiny_network()
        with pytest.raises(ValueError):
            apply_event(net, None, SimilarityUpdate("w", "m", 0.7))


class TestTraceGenerator:
    def test_deterministic(self):
        net, _ = workload()
        a = random_churn_trace(net, ChurnConfig(events=10, seed=3))
        b = random_churn_trace(net, ChurnConfig(events=10, seed=3))
        assert a == b

    def test_trace_replays_cleanly(self):
        net, table = workload(seed=2)
        trace = random_churn_trace(net, ChurnConfig(events=25, seed=7))
        assert len(trace) == 25
        for event in trace:
            apply_event(net, table, event)  # must never raise

    def test_min_hosts_floor(self):
        net, table = workload(hosts=4, degree=2)
        trace = random_churn_trace(
            net, ChurnConfig(events=30, seed=1, weights=(0, 1, 0, 0, 1),
                             min_hosts=3)
        )
        for event in trace:
            apply_event(net, table, event)
        assert len(net) >= 3

    def test_weights_select_kinds(self):
        net, _ = workload()
        trace = random_churn_trace(
            net, ChurnConfig(events=12, seed=5, weights=(0, 0, 0, 0, 1))
        )
        assert all(isinstance(e, SimilarityUpdate) for e in trace)

    def test_infeasible_weights_raise_instead_of_spinning(self):
        # Leave-only churn at the host floor has no feasible event; the
        # generator must fail fast, not loop forever.
        net, _ = workload(hosts=4, degree=2)
        with pytest.raises(ValueError, match="no feasible event kind"):
            random_churn_trace(
                net,
                ChurnConfig(events=5, seed=0, weights=(0, 1, 0, 0, 0),
                            min_hosts=len(net)),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(events=-1)
        with pytest.raises(ValueError):
            ChurnConfig(weights=(0, 0, 0, 0, 0))
        with pytest.raises(ValueError):
            ChurnConfig(sim_low=0.8, sim_high=0.2)


class TestStreamPlan:
    def test_matches_batch_builder(self):
        net, table = workload(seed=1)
        plan = StreamPlan(net, table)
        build = build_mrf(net, table)
        assert plan.plan.node_count == build.mrf.node_count
        assert plan.plan.edge_count == build.mrf.edge_count
        rng = np.random.default_rng(0)
        labels = rng.integers(0, plan.plan.label_counts)
        assert plan.plan.energy(labels) == pytest.approx(
            build.mrf.energy([int(x) for x in labels]), abs=1e-9
        )

    @pytest.mark.parametrize("tseed", range(3))
    def test_patched_plan_matches_rebuild(self, tseed):
        net, table = workload(seed=tseed)
        plan = StreamPlan(net, table)
        trace = random_churn_trace(net, ChurnConfig(events=10, seed=tseed))
        for event in trace:
            plan.apply(event)
        plan.flush()
        build = build_mrf(net, table)  # plan.apply mutated net/table in place
        assert plan.plan.node_count == build.mrf.node_count
        assert plan.plan.edge_count == build.mrf.edge_count
        rng = np.random.default_rng(1)
        labels = rng.integers(0, plan.plan.label_counts)
        assert plan.plan.energy(labels) == pytest.approx(
            build.mrf.energy([int(x) for x in labels]), abs=1e-9
        )

    def test_similarity_update_is_in_place(self):
        net, table = workload(seed=3)
        plan = StreamPlan(net, table)
        arrays_before = plan.plan
        products = net.candidates(net.hosts[0], "s0")
        plan.apply(SimilarityUpdate(products[0], products[1], 0.9))
        assert plan.plan is arrays_before  # no structural rebuild
        assert plan.dirty_cost > 0
        plan.flush()
        assert plan.plan is arrays_before

    def test_message_slots_track_edges(self):
        net, table = workload(seed=4)
        plan = StreamPlan(net, table)
        a, b = net.links[0]
        plan.apply(LinkRemove(a, b))
        assert plan.messages.shape[0] == 2 * len(plan._edge_first)
        plan.apply(LinkAdd(a, b))
        assert plan.messages.shape[0] == 2 * len(plan._edge_first)
        plan.flush()
        assert plan.messages.shape[0] == 2 * plan.plan.edge_count


class TestWarmStartParity:
    """The incremental contract: after any event sequence the warm re-solve
    reaches the same energy as a cold solve of the mutated network."""

    @pytest.mark.parametrize("wseed,tseed", [(0, 0), (1, 1), (2, 2), (3, 0)])
    def test_energy_parity_along_trace(self, wseed, tseed):
        net, table = workload(seed=wseed)
        trace = random_churn_trace(net, ChurnConfig(events=8, seed=tseed))
        engine = DynamicDiversifier(net.copy(), table.copy())
        initial = engine.solve()
        assert initial.energy == pytest.approx(
            diversify(net, table, fast_path=False).energy, abs=1e-9
        )
        check_net, check_table = net.copy(), table.copy()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event)
            cold = diversify(check_net, check_table, fast_path=False)
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)

    def test_energy_is_ground_truth(self):
        # The engine's reported energy must equal the model-level E(N) of
        # its assignment on the mutated network, event after event.
        net, table = workload(seed=5)
        trace = random_churn_trace(net, ChurnConfig(events=10, seed=5))
        engine = DynamicDiversifier(net, table)
        engine.solve()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            assert result.energy == pytest.approx(
                assignment_energy(net, table, result.assignment), abs=1e-9
            )
            assert result.assignment.is_complete()


class TestDynamicDiversifier:
    def test_warm_flag_lifecycle(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net, table)
        assert not engine.solve().warm  # first solve is cold
        a, b = engine.network.links[0]
        engine.apply(LinkRemove(a, b))
        assert engine.solve().warm

    def test_large_delta_falls_back_to_cold(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net, table, rebuild_fraction=0.25)
        engine.solve()
        for a, b in list(engine.network.links)[:12]:  # ~27% of 45 edges
            engine.apply(LinkRemove(a, b))
        assert not engine.solve().warm

    def test_warm_start_disabled(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net, table, warm_start=False)
        engine.solve()
        a, b = engine.network.links[0]
        engine.apply(LinkRemove(a, b))
        assert not engine.solve().warm

    def test_stability_metric(self):
        net, table = workload(seed=7)
        engine = DynamicDiversifier(net, table)
        first = engine.solve()
        assert first.stability == 1.0
        a, b = engine.network.links[0]
        engine.apply(LinkRemove(a, b))
        result = engine.solve()
        assert 0.0 <= result.stability <= 1.0

    def test_bp_solver_warm_start(self):
        net, table = workload(hosts=16, seed=8)
        engine = DynamicDiversifier(net, table, solver="bp")
        engine.solve()
        a, b = engine.network.links[0]
        engine.apply(LinkRemove(a, b))
        result = engine.solve()
        assert result.warm
        assert result.energy == pytest.approx(
            assignment_energy(net, table, result.assignment), abs=1e-9
        )

    def test_host_join_with_wider_label_space(self):
        # A joining host with a wider candidate range grows the message
        # padding without dropping the warm state.
        net, table = tiny_network()
        engine = DynamicDiversifier(net, table, rebuild_fraction=0.6)
        engine.solve()
        engine.apply(
            HostJoin(
                "h9",
                services=(("os", ("w", "l", "m", "x", "y")),),
                links=("h0", "h1"),
            )
        )
        result = engine.solve()
        assert result.warm
        assert result.assignment.is_complete()
        assert result.energy == pytest.approx(
            assignment_energy(net, table, result.assignment), abs=1e-9
        )

    def test_invalid_options(self):
        net, table = tiny_network()
        with pytest.raises(ValueError):
            DynamicDiversifier(net, table, solver="icm")
        with pytest.raises(ValueError):
            DynamicDiversifier(net, table, rebuild_fraction=2.0)
        with pytest.raises(ValueError):
            DynamicDiversifier(net, table, warm_iterations=0)
        with pytest.raises(ValueError):
            DynamicDiversifier(net, table, cost_jump_threshold=-1.0)


class TestCorrelatedTraces:
    def test_default_config_unchanged(self):
        # rack_size / vendor_batch of 1 must reproduce the pre-burst
        # draw sequence exactly (old seeds keep their traces).
        net, _ = workload()
        plain = random_churn_trace(net, ChurnConfig(events=15, seed=3))
        explicit = random_churn_trace(
            net, ChurnConfig(events=15, seed=3, rack_size=1, vendor_batch=1)
        )
        assert plain == explicit

    def test_rack_joins_share_peers_and_interlink(self):
        net, table = workload()
        trace = random_churn_trace(
            net,
            ChurnConfig(events=9, seed=2, weights=(1, 0, 0, 0, 0),
                        rack_size=3),
        )
        assert all(isinstance(e, HostJoin) for e in trace)
        racks = [trace[i : i + 3] for i in range(0, len(trace), 3)]
        for rack in racks:
            peer_sets = [set(m.links) - {n.host for n in rack} for m in rack]
            # Correlated: every member wires to the same aggregation peers.
            assert all(p == peer_sets[0] for p in peer_sets)
            # ... and to its earlier rack mates.
            for position, member in enumerate(rack):
                mates = {m.host for m in rack[:position]}
                assert mates <= set(member.links)
        for event in trace:
            apply_event(net, table, event)  # must never raise

    def test_vendor_batch_hits_one_range(self):
        net, table = workload()
        trace = random_churn_trace(
            net,
            ChurnConfig(events=12, seed=5, weights=(0, 0, 0, 0, 1),
                        vendor_batch=4),
        )
        assert all(isinstance(e, SimilarityUpdate) for e in trace)
        ranges = {
            net.candidates(host, service)
            for host in net.hosts
            for service in net.services_of(host)
        }
        for start in range(0, len(trace), 4):
            burst = trace[start : start + 4]
            touched = {p for e in burst for p in (e.product_a, e.product_b)}
            # All products of a burst belong to a single candidate range.
            assert any(touched <= set(r) for r in ranges)

    def test_bursts_deterministic_and_truncated(self):
        net, _ = workload()
        config = ChurnConfig(events=10, seed=1, rack_size=4, vendor_batch=3)
        a = random_churn_trace(net, config)
        b = random_churn_trace(net, config)
        assert a == b
        assert len(a) == 10

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            ChurnConfig(rack_size=0)
        with pytest.raises(ValueError):
            ChurnConfig(vendor_batch=0)


class TestShardedEngine:
    """The sharded engine's contract: per-component re-solves are exact
    and touch only the shards hit by each event."""

    @pytest.mark.parametrize("wseed,tseed", [(0, 0), (1, 1), (2, 2)])
    def test_energy_parity_along_trace(self, wseed, tseed):
        net, table = workload(seed=wseed)
        trace = random_churn_trace(net, ChurnConfig(events=8, seed=tseed))
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        initial = engine.solve()
        assert initial.energy == pytest.approx(
            diversify(net, table, fast_path=False).energy, abs=1e-9
        )
        assert initial.shards_solved == initial.shards_total
        check_net, check_table = net.copy(), table.copy()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event)
            cold = diversify(check_net, check_table, fast_path=False)
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)
            assert result.energy == pytest.approx(
                assignment_energy(check_net, check_table, result.assignment),
                abs=1e-9,
            )

    def test_parity_with_correlated_bursts(self):
        # Rack joins merge shards, host leaves split them; the burst trace
        # exercises both while parity must hold.  join_degree stays at 1 so
        # the trace remains inside the sparse, well-colorable family the
        # warm/cold parity contract covers (dense rack joins leave it for
        # the monolithic engine too).
        net, table = workload(seed=3)
        trace = random_churn_trace(
            net,
            ChurnConfig(events=10, seed=4, rack_size=2, vendor_batch=2,
                        join_degree=1, weights=(2.0, 1.0, 1.0, 1.0, 2.0)),
        )
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        engine.solve()
        check_net, check_table = net.copy(), table.copy()
        for event in trace:
            engine.apply(event)
            result = engine.solve()
            apply_event(check_net, check_table, event)
            cold = diversify(check_net, check_table, fast_path=False)
            assert result.energy == pytest.approx(cold.energy, abs=1e-9)

    def test_only_touched_shards_resolve(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        first = engine.solve()
        assert first.shards_total > 1
        # A similarity event inside one service's matrix touches only the
        # components pricing through it.
        host = engine.network.hosts[0]
        products = engine.network.candidates(host, "s0")
        engine.apply(SimilarityUpdate(products[0], products[1], 0.9))
        result = engine.solve()
        assert result.warm
        assert 0 < result.shards_solved < result.shards_total

    def test_clean_shard_state_untouched(self):
        net, table = workload(seed=7)
        engine = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        engine.solve()
        plan = engine.plan

        def edge_rows():
            """Edge identity → its pair of directed message rows."""
            return {
                (plan._edge_keys[e], plan.variables[plan._edge_first[e]]):
                    plan.messages[2 * e : 2 * e + 2].copy()
                for e in range(plan.edge_count)
            }

        rows_before = edge_rows()
        labels_before = {
            key: int(plan.labels[node])
            for node, key in enumerate(plan.variables)
        }
        a, b = engine.network.links[0]
        engine.apply(LinkRemove(a, b))
        touched = set(plan.touched)
        assert touched
        result = engine.solve()
        assert result.warm
        assert 0 < result.shards_solved < result.shards_total

        # Recompute the partition the solve ran over and classify shards.
        from repro.mrf.partition import split_parts

        unaries, first, second, cid, matrices = plan.parts()
        partition = split_parts(unaries, first, second, cid, matrices,
                                lmax=plan.messages.shape[1])
        clean_nodes = set()
        clean_count = 0
        for shard in partition:
            keys = {plan.variables[int(n)] for n in shard.nodes}
            if not keys & touched:
                clean_count += 1
                clean_nodes.update(int(n) for n in shard.nodes)
        assert clean_count == result.shards_total - result.shards_solved
        assert clean_nodes

        # Clean-shard variables kept their labels ...
        for node in clean_nodes:
            key = plan.variables[node]
            assert int(plan.labels[node]) == labels_before[key]
        # ... and clean-shard edges kept their message rows byte-for-byte.
        rows_after = edge_rows()
        compared = 0
        for e in range(plan.edge_count):
            if plan._edge_first[e] in clean_nodes:
                identity = (plan._edge_keys[e],
                            plan.variables[plan._edge_first[e]])
                assert np.array_equal(rows_after[identity],
                                      rows_before[identity])
                compared += 1
        assert compared > 0

    def test_merge_and_split_tracked(self):
        net, table = tiny_network()  # one chain h0-h1-h2-h3, 2 services
        engine = DynamicDiversifier(
            net, table, sharded=True, rebuild_fraction=1.0
        )
        first = engine.solve()
        assert first.shards_total == 2  # one component per service
        engine.apply(LinkRemove("h1", "h2"))
        split = engine.solve()
        assert split.shards_total == 4  # both services split in two
        assert split.warm
        engine.apply(LinkAdd("h1", "h2"))
        merged = engine.solve()
        assert merged.shards_total == 2
        assert merged.warm

    def test_cold_rebuild_falls_back(self):
        net, table = workload(seed=6)
        engine = DynamicDiversifier(
            net, table, sharded=True, rebuild_fraction=0.1
        )
        engine.solve()
        for a, b in list(engine.network.links)[:12]:
            engine.apply(LinkRemove(a, b))
        result = engine.solve()
        assert not result.warm
        assert result.shards_solved == result.shards_total

    def test_bp_sharded_parity(self):
        net, table = workload(hosts=16, seed=8)
        engine = DynamicDiversifier(net.copy(), table.copy(), solver="bp",
                                    sharded=True)
        engine.solve()
        a, b = engine.network.links[0]
        engine.apply(LinkRemove(a, b))
        result = engine.solve()
        assert result.warm
        assert result.energy == pytest.approx(
            assignment_energy(engine.network, engine.similarity,
                              result.assignment),
            abs=1e-9,
        )

    def test_shard_workers_thread_fanout_identical(self):
        net, table = workload(seed=9)
        serial = DynamicDiversifier(net.copy(), table.copy(), sharded=True)
        threaded = DynamicDiversifier(
            net.copy(), table.copy(), sharded=True, shard_workers=2
        )
        trace = random_churn_trace(net, ChurnConfig(events=5, seed=9))
        assert serial.solve().energy == pytest.approx(
            threaded.solve().energy, abs=1e-9
        )
        for event in trace:
            serial.apply(event)
            threaded.apply(event)
            assert serial.solve().energy == pytest.approx(
                threaded.solve().energy, abs=1e-9
            )

    @pytest.mark.parametrize("sharded", [False, True])
    def test_similarity_update_on_freshly_created_matrix(self, sharded):
        # Regression: a LinkAdd between hosts whose candidate-range pair
        # was not previously adjacent allocates a new cost matrix; a
        # SimilarityUpdate landing in it before the next flush (monolithic
        # batch) or ever (sharded mode never flushes the global plan) used
        # to patch the stale cost stack out of range and crash.
        net = Network()
        net.add_host("a1", {"svc": ("p0", "p1")})
        net.add_host("a2", {"svc": ("p0", "p1")})
        net.add_host("b1", {"svc": ("q0", "q1")})
        net.add_host("b2", {"svc": ("q0", "q1")})
        net.add_links([("a1", "a2"), ("b1", "b2")])
        table = SimilarityTable(
            pairs={("p0", "p1"): 0.4, ("q0", "q1"): 0.3}
        )
        engine = DynamicDiversifier(
            net, table, sharded=sharded, rebuild_fraction=1.0
        )
        engine.solve()
        # New (p-range, q-range) adjacency → a fresh cost matrix...
        engine.apply(LinkAdd("a1", "b1"))
        engine.solve()
        # ... which the next feed re-score must land in without crashing.
        engine.apply(SimilarityUpdate("p0", "q1", 0.8))
        result = engine.solve()
        assert result.energy == pytest.approx(
            assignment_energy(net, table, result.assignment), abs=1e-9
        )
        # And batched in one delta (structural + value before a solve).
        engine.apply(LinkAdd("a2", "b2"))
        engine.apply(SimilarityUpdate("p1", "q0", 0.7))
        result = engine.solve()
        assert result.energy == pytest.approx(
            assignment_energy(net, table, result.assignment), abs=1e-9
        )

    def test_sharded_replay_records(self):
        net, table = workload(hosts=12, seed=10)
        trace = random_churn_trace(net, ChurnConfig(events=4, seed=10))
        report = replay_trace(net, table, trace, sharded=True)
        for record in report.records:
            assert record.shards_total is not None
            assert 0 <= record.shards_solved <= record.shards_total
            assert "shards=" in record.row()


class TestReplayDriver:
    def test_records_and_summary(self):
        net, table = workload(seed=9)
        trace = random_churn_trace(net, ChurnConfig(events=6, seed=9))
        report = replay_trace(net, table, trace)
        assert len(report.records) == 6
        assert report.warm_count == 6
        assert 0.0 <= report.mean_stability <= 1.0
        assert report.total_cold_seconds is None
        assert "6 events" in report.summary()
        assert len(report.format_rows().splitlines()) == 6

    def test_compare_cold_fills_baseline(self):
        net, table = workload(hosts=12, seed=9)
        trace = random_churn_trace(net, ChurnConfig(events=3, seed=9))
        report = replay_trace(net, table, trace, compare_cold=True)
        for record in report.records:
            assert record.cold_seconds is not None
            assert record.cold_energy == pytest.approx(record.energy, abs=1e-9)
            assert record.speedup is not None
        assert "baseline" in report.summary()

    def test_cold_replay(self):
        net, table = workload(hosts=12, seed=10)
        trace = random_churn_trace(net, ChurnConfig(events=3, seed=10))
        report = replay_trace(net, table, trace, warm_start=False)
        assert report.warm_count == 0


class TestDualShardEngine:
    """`dual_shard_nodes` routes giant dirty shards through the edge-cut
    dual solver: energies stay ground-truth, the cached bound is the dual
    loop's certified global bound, and the path actually fires."""

    def test_validation(self):
        net, table = workload(hosts=8)
        with pytest.raises(ValueError, match="dual_shard_nodes"):
            DynamicDiversifier(net, table, sharded=True, dual_shard_nodes=0)
        with pytest.raises(ValueError, match="solver='trws'"):
            DynamicDiversifier(
                net, table, sharded=True, solver="bp", dual_shard_nodes=4
            )

    def test_dual_resolve_ground_truth_along_trace(self):
        from repro import obs

        net, table = workload(seed=11)
        trace = random_churn_trace(net, ChurnConfig(events=6, seed=11))
        # Threshold 1: every dirty shard re-solves through the dual loop.
        engine = DynamicDiversifier(
            net.copy(), table.copy(), sharded=True, dual_shard_nodes=1,
            dual_options={"parts": 2, "seed": 0},
        )
        engine.solve()
        check_net, check_table = net.copy(), table.copy()
        token = obs.begin_capture()
        try:
            fired = 0
            for event in trace:
                engine.apply(event)
                result = engine.solve()
                apply_event(check_net, check_table, event)
                cold = diversify(check_net, check_table, fast_path=False)
                # Ground truth: the reported energy is the model-level
                # energy of the returned assignment, always.
                assert result.energy == pytest.approx(
                    assignment_energy(
                        check_net, check_table, result.assignment
                    ),
                    abs=1e-9,
                )
                # The dual bound is a valid global bound for the touched
                # shard, so the engine's energy can undercut cold only
                # within float noise.
                assert result.energy >= cold.lower_bound - 1e-9
        finally:
            events = obs.end_capture(token)
        fired = sum(1 for e in events if e["name"] == "shard.dual")
        assert fired > 0
