"""Tests for random scalability workloads (repro.network.generator)."""

import pytest

from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)


class TestConfigValidation:
    def test_valid(self):
        RandomNetworkConfig(hosts=10, degree=3, services=2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(hosts=1, degree=1, services=1),
            dict(hosts=10, degree=0, services=1),
            dict(hosts=10, degree=10, services=1),
            dict(hosts=10, degree=3, services=0),
            dict(hosts=10, degree=3, services=2, products_per_service=1),
            dict(hosts=10, degree=3, services=2, similarity_density=1.5),
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RandomNetworkConfig(**kwargs)

    def test_expected_edges(self):
        config = RandomNetworkConfig(hosts=100, degree=10, services=2)
        assert config.expected_edges() == 500

    def test_product_names_are_namespaced(self):
        config = RandomNetworkConfig(hosts=10, degree=2, services=2)
        assert config.product_names("s0") == ["s0_p0", "s0_p1", "s0_p2", "s0_p3"]


class TestRandomNetwork:
    def test_host_and_edge_counts(self):
        config = RandomNetworkConfig(hosts=60, degree=6, services=3, seed=1)
        network = random_network(config)
        assert len(network) == 60
        assert network.edge_count() == 180  # regular graph: n*d/2

    def test_every_host_runs_every_service(self):
        config = RandomNetworkConfig(hosts=20, degree=4, services=3, seed=1)
        network = random_network(config)
        for host in network.hosts:
            assert network.services_of(host) == ["s0", "s1", "s2"]
            assert len(network.candidates(host, "s0")) == 4

    def test_deterministic(self):
        config = RandomNetworkConfig(hosts=30, degree=4, services=2, seed=5)
        assert random_network(config).links == random_network(config).links

    def test_seeds_differ(self):
        a = random_network(RandomNetworkConfig(hosts=30, degree=4, services=2, seed=5))
        b = random_network(RandomNetworkConfig(hosts=30, degree=4, services=2, seed=6))
        assert a.links != b.links

    def test_odd_degree_falls_back_to_gnm(self):
        config = RandomNetworkConfig(hosts=11, degree=3, services=1, seed=2)
        network = random_network(config)
        assert len(network) == 11
        assert network.edge_count() >= 11 * 3 // 2

    def test_no_isolated_hosts(self):
        config = RandomNetworkConfig(hosts=31, degree=3, services=1, seed=3)
        network = random_network(config)
        assert all(network.degree(host) > 0 for host in network.hosts)


class TestRandomSimilarity:
    def test_covers_all_products(self):
        config = RandomNetworkConfig(hosts=10, degree=2, services=2, seed=0)
        table = random_similarity(config)
        for service in config.service_names():
            for product in config.product_names(service):
                assert product in table

    def test_cross_service_pairs_zero(self):
        config = RandomNetworkConfig(hosts=10, degree=2, services=2, seed=0)
        table = random_similarity(config)
        assert table.get("s0_p0", "s1_p0") == 0.0

    def test_density_zero_gives_orthogonal_products(self):
        config = RandomNetworkConfig(
            hosts=10, degree=2, services=2, similarity_density=0.0, seed=0
        )
        table = random_similarity(config)
        assert table.mean_offdiagonal() == 0.0

    def test_values_within_band(self):
        config = RandomNetworkConfig(
            hosts=10, degree=2, services=1, similarity_density=1.0, seed=0
        )
        table = random_similarity(config, low=0.2, high=0.4)
        products = config.product_names("s0")
        for i, a in enumerate(products):
            for b in products[i + 1 :]:
                assert 0.2 <= table.get(a, b) <= 0.4

    def test_invalid_band_rejected(self):
        config = RandomNetworkConfig(hosts=10, degree=2, services=1)
        with pytest.raises(ValueError):
            random_similarity(config, low=0.5, high=0.2)

    def test_deterministic(self):
        config = RandomNetworkConfig(hosts=10, degree=2, services=2, seed=9)
        a, b = random_similarity(config), random_similarity(config)
        assert a.matrix(a.products).tolist() == b.matrix(b.products).tolist()
