"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in ("fig1", "fig4", "table2", "table3", "tabledb", "table5"):
            assert parser.parse_args([command]).command == command

    def test_table6_options(self):
        args = build_parser().parse_args(["table6", "--runs", "5", "--seed", "2"])
        assert args.runs == 5 and args.seed == 2

    def test_table6_workers_flag(self):
        parser = build_parser()
        assert parser.parse_args(["table6"]).workers is None
        assert parser.parse_args(["table6", "--workers", "2"]).workers == 2

    def test_stream_options(self):
        args = build_parser().parse_args(
            ["stream", "--hosts", "30", "--events", "5", "--solver", "bp",
             "--compare-cold"]
        )
        assert args.hosts == 30
        assert args.events == 5
        assert args.solver == "bp"
        assert args.compare_cold and not args.cold

    def test_scalability_full_flag(self):
        args = build_parser().parse_args(["table7", "--full"])
        assert args.full

    @pytest.mark.parametrize("command", ["table7", "table8", "table9"])
    def test_scalability_workers_flag(self, command):
        parser = build_parser()
        assert parser.parse_args([command]).workers is None
        assert parser.parse_args([command, "--workers", "4"]).workers == 4
        assert parser.parse_args([command, "--workers", "-1"]).workers == -1

    @pytest.mark.parametrize("command", ["table7", "table8", "table9"])
    def test_scalability_dual_flags(self, command):
        parser = build_parser()
        args = parser.parse_args([command])
        assert args.shards is None
        assert args.dual_parts == 4
        args = parser.parse_args(
            [command, "--shards", "cut", "--dual-parts", "8",
             "--dual-rounds", "20", "--dual-gap", "1e-4"]
        )
        assert args.shards == "cut"
        assert args.dual_parts == 8
        assert args.dual_rounds == 20
        assert args.dual_gap == pytest.approx(1e-4)

    def test_sensitivity_options(self):
        args = build_parser().parse_args(
            ["sensitivity", "--noise", "0.2", "--seeds", "1", "2", "--workers", "2"]
        )
        assert args.noise == [0.2]
        assert args.seeds == [1, 2]
        assert args.workers == 2


class TestExecution:
    def test_fig1_output(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "0.1250" in out and "0.5000" in out

    def test_table2_output(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "0.278" in out  # Win7/WinXP from the paper's Table II
        assert "Win10" in out

    def test_table3_output(self, capsys):
        assert main(["table3"]) == 0
        assert "0.386" in capsys.readouterr().out

    def test_tabledb_output(self, capsys):
        assert main(["tabledb"]) == 0
        assert "MariaDB 10" in capsys.readouterr().out

    def test_table5_output(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out and "mono" in out and "d_bn" in out

    def test_table6_small_run(self, capsys):
        assert main(["table6", "--runs", "10"]) == 0
        assert "MTTC" in capsys.readouterr().out

    def test_synthetic_nvd(self, capsys):
        assert main(["synthetic-nvd", "--cves-per-year", "20"]) == 0
        out = capsys.readouterr().out
        assert "synthetic feed" in out
        assert "microsoft windows_7" in out


class TestExtensionCommands:
    def test_sensitivity(self, capsys):
        assert main(["sensitivity", "--noise", "0.1", "--seeds", "0"]) == 0
        out = capsys.readouterr().out
        assert "Similarity-perturbation sensitivity" in out
        assert "agreement=" in out

    def test_effort(self, capsys):
        assert main(["effort"]) == 0
        out = capsys.readouterr().out
        assert "Least attacking effort" in out
        assert "k-0day" in out

    def test_richness(self, capsys):
        assert main(["richness"]) == 0
        out = capsys.readouterr().out
        assert "d1=" in out
        assert "mono" in out and "optimal" in out

    def test_plan(self, capsys):
        assert main(["plan", "--budget", "3"]) == 0
        out = capsys.readouterr().out
        assert "upgrade plan: 3 change(s)" in out

    def test_adversary(self, capsys):
        assert main(["adversary", "--runs", "20"]) == 0
        out = capsys.readouterr().out
        assert "full" in out and "blind" in out

    def test_stream(self, capsys):
        assert main(["stream", "--hosts", "12", "--events", "3"]) == 0
        out = capsys.readouterr().out
        assert "Streaming churn" in out
        assert "events" in out and "warm" in out

    def test_dot(self, capsys, tmp_path):
        out_path = tmp_path / "case.dot"
        assert main(["dot", "--out", str(out_path)]) == 0
        assert out_path.exists()
        assert out_path.read_text().startswith("graph")
