"""Tests for the batched replicated-service TRW-S (repro.mrf.batched)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import diversify
from repro.mrf.batched import (
    BatchedTRWSSolver,
    ReplicatedProblem,
    replicated_problem_from_network,
)
from repro.network.constraints import ConstraintSet, FixProduct
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable


def workload(hosts=16, degree=4, services=2, seed=0, density=0.5):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        similarity_density=density, seed=seed,
    )
    return random_network(config), random_similarity(config)


class TestEligibility:
    def test_uniform_network_is_eligible(self):
        network, similarity = workload()
        problem = replicated_problem_from_network(network, similarity)
        assert problem is not None
        assert problem.host_count == 16
        assert len(problem.services) == 2

    def test_heterogeneous_services_ineligible(self):
        network = Network()
        network.add_host("a", {"os": ["w", "l"]})
        network.add_host("b", {"db": ["m", "p"]})
        network.add_link("a", "b")
        assert replicated_problem_from_network(network, SimilarityTable()) is None

    def test_differing_ranges_ineligible(self):
        network = Network()
        network.add_host("a", {"os": ["w", "l"]})
        network.add_host("b", {"os": ["w", "x"]})
        network.add_link("a", "b")
        assert replicated_problem_from_network(network, SimilarityTable()) is None

    def test_differing_label_counts_ineligible(self):
        network = Network()
        spec = {"os": ["w", "l"], "db": ["m", "p", "q"]}
        network.add_host("a", spec)
        network.add_host("b", spec)
        network.add_link("a", "b")
        assert replicated_problem_from_network(network, SimilarityTable()) is None

    def test_empty_network_ineligible(self):
        assert replicated_problem_from_network(Network(), SimilarityTable()) is None


class TestProblemValidation:
    def test_energy_evaluation(self):
        network, similarity = workload(hosts=6, degree=2, services=1)
        problem = replicated_problem_from_network(network, similarity)
        labels = np.zeros((6, 1), dtype=np.int64)
        # All-same labelling pays similarity 1.0 per edge plus unary.
        expected = 0.01 * 6 + 1.0 * problem.edges.shape[0]
        assert problem.energy(labels) == pytest.approx(expected)

    def test_wrong_label_shape_rejected(self):
        network, similarity = workload(hosts=6, degree=2, services=1)
        problem = replicated_problem_from_network(network, similarity)
        with pytest.raises(ValueError):
            problem.energy(np.zeros((3, 1), dtype=np.int64))

    def test_asymmetric_costs_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedProblem(
                host_count=2,
                edges=np.array([[0, 1]]),
                services=["s"],
                products=[("a", "b")],
                unary=np.zeros((2, 1, 2)),
                costs=np.array([[[0.0, 1.0], [0.0, 0.0]]]),
            )


class TestParityWithGeneralSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_energy_as_flat_trws(self, seed):
        network, similarity = workload(hosts=14, degree=4, services=3, seed=seed)
        flat = diversify(network, similarity, fast_path=False, max_iterations=60)
        fast = diversify(network, similarity, fast_path=True, max_iterations=60)
        assert fast.solver_result.solver == "trws-batched"
        assert flat.solver_result.solver == "trws"
        assert fast.energy == pytest.approx(flat.energy, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_parity(self, seed):
        network, similarity = workload(hosts=10, degree=3, services=2, seed=seed)
        flat = diversify(network, similarity, fast_path=False, max_iterations=40)
        fast = diversify(network, similarity, fast_path=True, max_iterations=40)
        assert fast.energy == pytest.approx(flat.energy, abs=1e-9)

    def test_bound_validity(self):
        network, similarity = workload(hosts=12, degree=3, services=2, seed=7)
        fast = diversify(network, similarity, fast_path=True, max_iterations=50)
        assert fast.lower_bound <= fast.energy + 1e-9


class TestFastPathRouting:
    def test_constraints_force_general_path(self):
        network, similarity = workload(hosts=8, degree=2, services=1, seed=1)
        host = network.hosts[0]
        product = network.candidates(host, "s0")[0]
        constraints = ConstraintSet([FixProduct(host, "s0", product)])
        result = diversify(network, similarity, constraints=constraints)
        assert result.solver_result.solver == "trws"
        assert result.assignment.get(host, "s0") == product

    def test_non_trws_solver_skips_fast_path(self):
        network, similarity = workload(hosts=8, degree=2, services=1, seed=1)
        result = diversify(network, similarity, solver="icm")
        assert result.solver_result.solver == "icm"

    def test_fast_path_result_has_no_build_or_plan(self):
        network, similarity = workload(hosts=8, degree=2, services=1, seed=1)
        fast = diversify(network, similarity)
        assert fast.build is None
        assert fast.plan is None
        # The general path compiles an array plan by default...
        slow = diversify(network, similarity, fast_path=False)
        assert slow.plan is not None
        assert slow.build is None
        # ...and compile="python" keeps the classic MRF object pipeline.
        classic = diversify(
            network, similarity, fast_path=False, compile="python"
        )
        assert classic.build is not None
        assert classic.plan is None


class TestLevelBatching:
    """The wavefront-level path must reproduce the per-host schedule."""

    @pytest.mark.parametrize("seed", range(5))
    def test_energy_and_bound_parity(self, seed):
        network, similarity = workload(hosts=24, degree=4, services=3, seed=seed)
        problem = replicated_problem_from_network(network, similarity)
        levels = BatchedTRWSSolver(max_iterations=40).solve(problem)
        per_host = BatchedTRWSSolver(
            max_iterations=40, level_batched=False
        ).solve(problem)
        assert levels.energy == pytest.approx(per_host.energy, abs=1e-9)
        assert levels.lower_bound == pytest.approx(per_host.lower_bound, abs=1e-7)
        assert levels.iterations == per_host.iterations

    def test_default_is_level_batched(self):
        assert BatchedTRWSSolver().level_batched

    def test_chain_alternation_on_both_paths(self):
        network = Network()
        spec = {"x": ["a", "b"]}
        for i in range(6):
            network.add_host(f"h{i}", spec)
        for i in range(5):
            network.add_link(f"h{i}", f"h{i+1}")
        problem = replicated_problem_from_network(network, SimilarityTable())
        for batched in (True, False):
            result = BatchedTRWSSolver(
                max_iterations=30, level_batched=batched
            ).solve(problem)
            assert result.energy == pytest.approx(0.01 * 6)
            column = result.labels[:, 0]
            assert all(a != b for a, b in zip(column, column[1:]))


class TestSolverBehaviour:
    def test_chain_alternation(self):
        # Two services over a 6-chain; similarity 1 between equal products
        # only: the solver must alternate products along the chain.
        network = Network()
        spec = {"x": ["a", "b"], "y": ["c", "d"]}
        for i in range(6):
            network.add_host(f"h{i}", spec)
        for i in range(5):
            network.add_link(f"h{i}", f"h{i+1}")
        problem = replicated_problem_from_network(network, SimilarityTable())
        result = BatchedTRWSSolver(max_iterations=30).solve(problem)
        assert result.energy == pytest.approx(0.01 * 12)
        for k in range(2):
            column = result.labels[:, k]
            assert all(a != b for a, b in zip(column, column[1:]))

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            BatchedTRWSSolver(max_iterations=0)


class TestVectorizedBuilder:
    """The interned array builder must reproduce the original loop exactly."""

    @staticmethod
    def _reference_build(network, similarity, unary_constant=0.01,
                         pairwise_weight=1.0):
        """The pre-vectorization builder, kept verbatim as the oracle."""
        hosts = network.hosts
        if not hosts:
            return None
        services = network.services_of(hosts[0])
        if not services:
            return None
        ranges = [network.candidates(hosts[0], service) for service in services]
        label_count = len(ranges[0])
        if any(len(r) != label_count for r in ranges):
            return None
        for host in hosts[1:]:
            if network.services_of(host) != services:
                return None
            for service, expected in zip(services, ranges):
                if network.candidates(host, service) != expected:
                    return None
        index = {host: position for position, host in enumerate(hosts)}
        edges = np.array(
            sorted((min(index[a], index[b]), max(index[a], index[b]))
                   for a, b in network.links),
            dtype=np.int64,
        ).reshape(-1, 2)
        s = len(services)
        unary = np.full((len(hosts), s, label_count), float(unary_constant))
        costs = np.empty((s, label_count, label_count))
        for k, products in enumerate(ranges):
            for row, a in enumerate(products):
                for col, b in enumerate(products):
                    costs[k, row, col] = pairwise_weight * similarity.get(a, b)
        return ReplicatedProblem(
            host_count=len(hosts), edges=edges, services=list(services),
            products=ranges, unary=unary, costs=costs,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_loop_bitwise(self, seed):
        network, similarity = workload(
            hosts=24, degree=5, services=3, seed=seed, density=0.6
        )
        got = replicated_problem_from_network(
            network, similarity, unary_constant=0.02, pairwise_weight=1.5
        )
        want = self._reference_build(
            network, similarity, unary_constant=0.02, pairwise_weight=1.5
        )
        assert got is not None and want is not None
        assert got.host_count == want.host_count
        assert got.services == want.services
        assert got.products == want.products
        np.testing.assert_array_equal(got.edges, want.edges)
        np.testing.assert_array_equal(got.unary, want.unary)
        np.testing.assert_array_equal(got.costs, want.costs)

    def test_linkless_network_builds_empty_edges(self):
        network = Network()
        network.add_host("h0", {"x": ["a", "b"]})
        network.add_host("h1", {"x": ["a", "b"]})
        problem = replicated_problem_from_network(network, SimilarityTable())
        assert problem is not None
        assert problem.edges.shape == (0, 2)
        assert problem.edges.dtype == np.int64


class TestScratchReuse:
    def test_solve_with_shared_scratch_is_bit_identical(self):
        from repro.mrf.vectorized import SolverScratch

        network, similarity = workload(hosts=18, degree=4, services=2, seed=3)
        problem = replicated_problem_from_network(network, similarity)
        solver = BatchedTRWSSolver(max_iterations=25)
        scratch = SolverScratch()
        # Warm the scratch on a different instance so reuse paths execute.
        other_net, other_sim = workload(hosts=10, degree=3, services=2, seed=4)
        solver.solve(
            replicated_problem_from_network(other_net, other_sim),
            scratch=scratch,
        )
        with_scratch = solver.solve(problem, scratch=scratch)
        without = solver.solve(problem)
        np.testing.assert_array_equal(with_scratch.labels, without.labels)
        assert with_scratch.energy == without.energy
        assert with_scratch.lower_bound == without.lower_bound
        assert with_scratch.iterations == without.iterations
        assert with_scratch.converged == without.converged

    def test_level_batched_off_ignores_scratch_identically(self):
        from repro.mrf.vectorized import SolverScratch

        network, similarity = workload(hosts=12, degree=3, services=2, seed=5)
        problem = replicated_problem_from_network(network, similarity)
        solver = BatchedTRWSSolver(max_iterations=25, level_batched=False)
        with_scratch = solver.solve(problem, scratch=SolverScratch())
        without = solver.solve(problem)
        np.testing.assert_array_equal(with_scratch.labels, without.labels)
        assert with_scratch.energy == without.energy
