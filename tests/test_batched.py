"""Tests for the batched replicated-service TRW-S (repro.mrf.batched)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import diversify
from repro.mrf.batched import (
    BatchedTRWSSolver,
    ReplicatedProblem,
    replicated_problem_from_network,
)
from repro.network.constraints import ConstraintSet, FixProduct
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable


def workload(hosts=16, degree=4, services=2, seed=0, density=0.5):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        similarity_density=density, seed=seed,
    )
    return random_network(config), random_similarity(config)


class TestEligibility:
    def test_uniform_network_is_eligible(self):
        network, similarity = workload()
        problem = replicated_problem_from_network(network, similarity)
        assert problem is not None
        assert problem.host_count == 16
        assert len(problem.services) == 2

    def test_heterogeneous_services_ineligible(self):
        network = Network()
        network.add_host("a", {"os": ["w", "l"]})
        network.add_host("b", {"db": ["m", "p"]})
        network.add_link("a", "b")
        assert replicated_problem_from_network(network, SimilarityTable()) is None

    def test_differing_ranges_ineligible(self):
        network = Network()
        network.add_host("a", {"os": ["w", "l"]})
        network.add_host("b", {"os": ["w", "x"]})
        network.add_link("a", "b")
        assert replicated_problem_from_network(network, SimilarityTable()) is None

    def test_differing_label_counts_ineligible(self):
        network = Network()
        spec = {"os": ["w", "l"], "db": ["m", "p", "q"]}
        network.add_host("a", spec)
        network.add_host("b", spec)
        network.add_link("a", "b")
        assert replicated_problem_from_network(network, SimilarityTable()) is None

    def test_empty_network_ineligible(self):
        assert replicated_problem_from_network(Network(), SimilarityTable()) is None


class TestProblemValidation:
    def test_energy_evaluation(self):
        network, similarity = workload(hosts=6, degree=2, services=1)
        problem = replicated_problem_from_network(network, similarity)
        labels = np.zeros((6, 1), dtype=np.int64)
        # All-same labelling pays similarity 1.0 per edge plus unary.
        expected = 0.01 * 6 + 1.0 * problem.edges.shape[0]
        assert problem.energy(labels) == pytest.approx(expected)

    def test_wrong_label_shape_rejected(self):
        network, similarity = workload(hosts=6, degree=2, services=1)
        problem = replicated_problem_from_network(network, similarity)
        with pytest.raises(ValueError):
            problem.energy(np.zeros((3, 1), dtype=np.int64))

    def test_asymmetric_costs_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedProblem(
                host_count=2,
                edges=np.array([[0, 1]]),
                services=["s"],
                products=[("a", "b")],
                unary=np.zeros((2, 1, 2)),
                costs=np.array([[[0.0, 1.0], [0.0, 0.0]]]),
            )


class TestParityWithGeneralSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_same_energy_as_flat_trws(self, seed):
        network, similarity = workload(hosts=14, degree=4, services=3, seed=seed)
        flat = diversify(network, similarity, fast_path=False, max_iterations=60)
        fast = diversify(network, similarity, fast_path=True, max_iterations=60)
        assert fast.solver_result.solver == "trws-batched"
        assert flat.solver_result.solver == "trws"
        assert fast.energy == pytest.approx(flat.energy, abs=1e-9)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_property_parity(self, seed):
        network, similarity = workload(hosts=10, degree=3, services=2, seed=seed)
        flat = diversify(network, similarity, fast_path=False, max_iterations=40)
        fast = diversify(network, similarity, fast_path=True, max_iterations=40)
        assert fast.energy == pytest.approx(flat.energy, abs=1e-9)

    def test_bound_validity(self):
        network, similarity = workload(hosts=12, degree=3, services=2, seed=7)
        fast = diversify(network, similarity, fast_path=True, max_iterations=50)
        assert fast.lower_bound <= fast.energy + 1e-9


class TestFastPathRouting:
    def test_constraints_force_general_path(self):
        network, similarity = workload(hosts=8, degree=2, services=1, seed=1)
        host = network.hosts[0]
        product = network.candidates(host, "s0")[0]
        constraints = ConstraintSet([FixProduct(host, "s0", product)])
        result = diversify(network, similarity, constraints=constraints)
        assert result.solver_result.solver == "trws"
        assert result.assignment.get(host, "s0") == product

    def test_non_trws_solver_skips_fast_path(self):
        network, similarity = workload(hosts=8, degree=2, services=1, seed=1)
        result = diversify(network, similarity, solver="icm")
        assert result.solver_result.solver == "icm"

    def test_fast_path_result_has_no_build_or_plan(self):
        network, similarity = workload(hosts=8, degree=2, services=1, seed=1)
        fast = diversify(network, similarity)
        assert fast.build is None
        assert fast.plan is None
        # The general path compiles an array plan by default...
        slow = diversify(network, similarity, fast_path=False)
        assert slow.plan is not None
        assert slow.build is None
        # ...and compile="python" keeps the classic MRF object pipeline.
        classic = diversify(
            network, similarity, fast_path=False, compile="python"
        )
        assert classic.build is not None
        assert classic.plan is None


class TestLevelBatching:
    """The wavefront-level path must reproduce the per-host schedule."""

    @pytest.mark.parametrize("seed", range(5))
    def test_energy_and_bound_parity(self, seed):
        network, similarity = workload(hosts=24, degree=4, services=3, seed=seed)
        problem = replicated_problem_from_network(network, similarity)
        levels = BatchedTRWSSolver(max_iterations=40).solve(problem)
        per_host = BatchedTRWSSolver(
            max_iterations=40, level_batched=False
        ).solve(problem)
        assert levels.energy == pytest.approx(per_host.energy, abs=1e-9)
        assert levels.lower_bound == pytest.approx(per_host.lower_bound, abs=1e-7)
        assert levels.iterations == per_host.iterations

    def test_default_is_level_batched(self):
        assert BatchedTRWSSolver().level_batched

    def test_chain_alternation_on_both_paths(self):
        network = Network()
        spec = {"x": ["a", "b"]}
        for i in range(6):
            network.add_host(f"h{i}", spec)
        for i in range(5):
            network.add_link(f"h{i}", f"h{i+1}")
        problem = replicated_problem_from_network(network, SimilarityTable())
        for batched in (True, False):
            result = BatchedTRWSSolver(
                max_iterations=30, level_batched=batched
            ).solve(problem)
            assert result.energy == pytest.approx(0.01 * 6)
            column = result.labels[:, 0]
            assert all(a != b for a, b in zip(column, column[1:]))


class TestSolverBehaviour:
    def test_chain_alternation(self):
        # Two services over a 6-chain; similarity 1 between equal products
        # only: the solver must alternate products along the chain.
        network = Network()
        spec = {"x": ["a", "b"], "y": ["c", "d"]}
        for i in range(6):
            network.add_host(f"h{i}", spec)
        for i in range(5):
            network.add_link(f"h{i}", f"h{i+1}")
        problem = replicated_problem_from_network(network, SimilarityTable())
        result = BatchedTRWSSolver(max_iterations=30).solve(problem)
        assert result.energy == pytest.approx(0.01 * 12)
        for k in range(2):
            column = result.labels[:, k]
            assert all(a != b for a, b in zip(column, column[1:]))

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            BatchedTRWSSolver(max_iterations=0)
