"""Tests for the TRW-S primal-refinement machinery.

Covers the engineering additions documented in DESIGN.md decision 3:
tie-breaking noise, the multi-init ICM polish, and the MRF-level greedy
labelling — on both the flat and the batched solver.
"""

import numpy as np
import pytest

from repro.mrf.batched import BatchedTRWSSolver, replicated_problem_from_network
from repro.mrf.graph import PairwiseMRF
from repro.mrf.reference import _greedy_labels
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)

from helpers import make_random_mrf


def flat_workload(seed, hosts=12, degree=3, services=2):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        similarity_density=0.5, seed=seed,
    )
    return random_network(config), random_similarity(config)


class TestGreedyLabels:
    def test_greedy_respects_label_ranges(self):
        mrf = make_random_mrf(nodes=8, edge_probability=0.5, max_labels=3, seed=1)
        labels = _greedy_labels(mrf)
        assert len(labels) == 8
        for node, label in enumerate(labels):
            assert 0 <= label < mrf.label_count(node)

    def test_greedy_two_node_antichain(self):
        mrf = PairwiseMRF()
        a = mrf.add_node([0.0, 0.0])
        b = mrf.add_node([0.0, 0.0])
        mrf.add_edge(a, b, np.eye(2))
        labels = _greedy_labels(mrf)
        assert labels[0] != labels[1]

    def test_greedy_prefers_low_unary_on_isolated(self):
        mrf = PairwiseMRF()
        mrf.add_node([2.0, 0.0, 1.0])
        assert _greedy_labels(mrf) == [1]

    @pytest.mark.parametrize("seed", range(4))
    def test_plan_level_greedy_matches_mrf_level(self, seed):
        # The production solvers construct the greedy init on the plan
        # (MRFArrays.greedy_labels); it must reproduce the MRF-level
        # reference exactly.
        mrf = make_random_mrf(nodes=10, edge_probability=0.5, max_labels=4,
                              seed=seed)
        plan_labels = MRFArrays(mrf).greedy_labels()
        assert [int(x) for x in plan_labels] == _greedy_labels(mrf)


class TestRefinementEffect:
    @pytest.mark.parametrize("seed", range(5))
    def test_refined_never_worse_than_unrefined(self, seed):
        mrf = make_random_mrf(nodes=10, edge_probability=0.4, max_labels=3, seed=seed)
        unrefined = TRWSSolver(max_iterations=20, refine=False, seed=0).solve(mrf)
        refined = TRWSSolver(max_iterations=20, refine=True, seed=0).solve(mrf)
        assert refined.energy <= unrefined.energy + 1e-9

    def test_refined_result_is_single_flip_optimal(self):
        mrf = make_random_mrf(nodes=10, edge_probability=0.4, max_labels=3, seed=3)
        result = TRWSSolver(max_iterations=20).solve(mrf)
        for node in range(mrf.node_count):
            for label in range(mrf.label_count(node)):
                flipped = list(result.labels)
                flipped[node] = label
                assert mrf.energy(flipped) >= result.energy - 1e-9

    def test_noise_zero_still_valid(self):
        mrf = make_random_mrf(nodes=8, edge_probability=0.5, max_labels=3, seed=2)
        result = TRWSSolver(max_iterations=20, tie_break_noise=0.0).solve(mrf)
        assert result.energy == pytest.approx(mrf.energy(result.labels))

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            TRWSSolver(tie_break_noise=-1.0)

    def test_energy_reported_against_original_costs(self):
        # Large noise must not leak into the reported energy.
        mrf = make_random_mrf(nodes=8, edge_probability=0.5, max_labels=3, seed=4)
        result = TRWSSolver(max_iterations=20, tie_break_noise=0.5).solve(mrf)
        assert result.energy == pytest.approx(mrf.energy(result.labels))

    def test_bound_still_valid_under_noise(self):
        from repro.mrf.exact import ExactSolver

        mrf = make_random_mrf(nodes=6, edge_probability=0.6, max_labels=3, seed=5)
        exact = ExactSolver().solve(mrf)
        for noise in (1e-4, 1e-2, 0.3):
            result = TRWSSolver(max_iterations=30, tie_break_noise=noise).solve(mrf)
            assert result.lower_bound <= exact.energy + 1e-9


class TestBatchedRefinement:
    def test_refined_never_worse_than_unrefined(self):
        network, similarity = flat_workload(seed=10)
        problem = replicated_problem_from_network(network, similarity)
        unrefined = BatchedTRWSSolver(max_iterations=15, refine=False).solve(problem)
        refined = BatchedTRWSSolver(max_iterations=15, refine=True).solve(problem)
        assert refined.energy <= unrefined.energy + 1e-9

    def test_batched_single_flip_optimal(self):
        network, similarity = flat_workload(seed=11)
        problem = replicated_problem_from_network(network, similarity)
        result = BatchedTRWSSolver(max_iterations=15).solve(problem)
        labels = result.labels
        base = problem.energy(labels)
        for host in range(problem.host_count):
            for service in range(len(problem.services)):
                for label in range(problem.label_count):
                    flipped = labels.copy()
                    flipped[host, service] = label
                    assert problem.energy(flipped) >= base - 1e-9

    def test_batched_beats_greedy_baseline(self):
        from repro.core import greedy_assignment
        from repro.core.costs import assignment_energy

        for seed in range(5):
            network, similarity = flat_workload(seed=seed)
            from repro.core import diversify

            optimal = diversify(network, similarity, max_iterations=25)
            greedy = greedy_assignment(network, similarity)
            assert optimal.energy <= assignment_energy(
                network, similarity, greedy
            ) + 1e-9

    def test_batched_noise_validation(self):
        with pytest.raises(ValueError):
            BatchedTRWSSolver(tie_break_noise=-0.5)
