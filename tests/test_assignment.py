"""Unit tests for product assignments (repro.network.assignment)."""

import pytest

from repro.network.assignment import AssignmentError, ProductAssignment
from repro.network.model import Network


@pytest.fixture
def net():
    network = Network()
    network.add_host("a", {"os": ["w", "l"], "db": ["m", "p"]})
    network.add_host("b", {"os": ["w", "l"]})
    return network


class TestAssign:
    def test_assign_and_get(self, net):
        assignment = ProductAssignment(net)
        assignment.assign("a", "os", "l")
        assert assignment.get("a", "os") == "l"
        assert assignment[("a", "os")] == "l"

    def test_get_unassigned_is_none(self, net):
        assert ProductAssignment(net).get("a", "os") is None

    def test_assign_outside_range_rejected(self, net):
        with pytest.raises(AssignmentError):
            ProductAssignment(net).assign("a", "os", "mac")

    def test_assign_unknown_service_rejected(self, net):
        with pytest.raises(Exception):
            ProductAssignment(net).assign("b", "db", "m")

    def test_constructor_values(self, net):
        assignment = ProductAssignment(net, {("a", "os"): "w"})
        assert assignment.get("a", "os") == "w"

    def test_reassign_overwrites(self, net):
        assignment = ProductAssignment(net)
        assignment.assign("a", "os", "w")
        assignment.assign("a", "os", "l")
        assert assignment.get("a", "os") == "l"

    def test_unassign(self, net):
        assignment = ProductAssignment(net, {("a", "os"): "w"})
        assignment.unassign("a", "os")
        assert assignment.get("a", "os") is None


class TestCompleteness:
    def test_missing_and_complete(self, net):
        assignment = ProductAssignment(net)
        assert not assignment.is_complete()
        assert set(assignment.missing()) == {("a", "os"), ("a", "db"), ("b", "os")}
        assignment.assign("a", "os", "w")
        assignment.assign("a", "db", "m")
        assignment.assign("b", "os", "l")
        assert assignment.is_complete()
        assert assignment.missing() == []

    def test_products_at(self, net):
        assignment = ProductAssignment(net, {("a", "os"): "w", ("a", "db"): "p"})
        assert assignment.products_at("a") == {"os": "w", "db": "p"}
        assert assignment.products_at("b") == {}

    def test_len_and_iter(self, net):
        assignment = ProductAssignment(net, {("a", "os"): "w"})
        assert len(assignment) == 1
        assert list(assignment) == [("a", "os")]
        assert ("a", "os") in assignment


class TestComparison:
    def test_diff(self, net):
        left = ProductAssignment(net, {("a", "os"): "w", ("b", "os"): "l"})
        right = ProductAssignment(net, {("a", "os"): "w", ("b", "os"): "w"})
        assert left.diff(right) == [("b", "os")]

    def test_diff_includes_missing_keys(self, net):
        left = ProductAssignment(net, {("a", "os"): "w"})
        right = ProductAssignment(net)
        assert left.diff(right) == [("a", "os")]

    def test_equality(self, net):
        left = ProductAssignment(net, {("a", "os"): "w"})
        right = ProductAssignment(net, {("a", "os"): "w"})
        assert left == right
        right.assign("a", "os", "l")
        assert left != right

    def test_copy_independent(self, net):
        original = ProductAssignment(net, {("a", "os"): "w"})
        clone = original.copy()
        clone.assign("a", "os", "l")
        assert original.get("a", "os") == "w"

    def test_unhashable(self, net):
        with pytest.raises(TypeError):
            hash(ProductAssignment(net))


class TestPresentation:
    def test_format_lists_hosts(self, net):
        assignment = ProductAssignment(net, {("a", "os"): "w"})
        rendered = assignment.format()
        assert "a: os=w" in rendered
        assert "b: (unassigned)" in rendered

    def test_as_dict_snapshot(self, net):
        assignment = ProductAssignment(net, {("a", "os"): "w"})
        snapshot = assignment.as_dict()
        snapshot[("a", "os")] = "l"
        assert assignment.get("a", "os") == "w"
