"""Unit tests for the CPE naming scheme (repro.nvd.cpe)."""

import pytest

from repro.nvd.cpe import CPE, CPEError, PART_APPLICATION, PART_OS


class TestParsing:
    def test_parse_os_cpe(self):
        cpe = CPE.parse("cpe:/o:microsoft:windows_7")
        assert cpe.part == PART_OS
        assert cpe.vendor == "microsoft"
        assert cpe.product == "windows_7"
        assert cpe.version is None

    def test_parse_with_version(self):
        cpe = CPE.parse("cpe:/a:google:chrome:50.0")
        assert cpe.part == PART_APPLICATION
        assert cpe.version == "50.0"

    def test_parse_with_update(self):
        cpe = CPE.parse("cpe:/a:mozilla:firefox:45.0:esr")
        assert cpe.version == "45.0"
        assert cpe.update == "esr"

    def test_parse_dash_version_is_wildcard(self):
        cpe = CPE.parse("cpe:/a:microsoft:edge:-")
        assert cpe.version is None

    def test_parse_lowercases(self):
        cpe = CPE.parse("CPE:/A:Microsoft:Edge")
        assert cpe.vendor == "microsoft"
        assert cpe.product == "edge"

    def test_parse_rejects_non_cpe(self):
        with pytest.raises(CPEError):
            CPE.parse("not-a-cpe")

    def test_parse_rejects_too_few_fields(self):
        with pytest.raises(CPEError):
            CPE.parse("cpe:/a:vendoronly")

    def test_invalid_part_rejected(self):
        with pytest.raises(CPEError):
            CPE(part="x", vendor="v", product="p")

    def test_empty_vendor_rejected(self):
        with pytest.raises(CPEError):
            CPE(part="a", vendor="", product="p")

    def test_empty_product_rejected(self):
        with pytest.raises(CPEError):
            CPE(part="a", vendor="v", product="")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "uri",
        [
            "cpe:/o:microsoft:windows_7",
            "cpe:/a:google:chrome:50.0",
            "cpe:/a:mozilla:firefox:45.0:esr",
        ],
    )
    def test_uri_round_trips(self, uri):
        assert CPE.parse(uri).uri() == uri

    def test_str_is_uri(self):
        cpe = CPE.parse("cpe:/a:google:chrome")
        assert str(cpe) == "cpe:/a:google:chrome"


class TestMatching:
    def test_product_level_query_matches_any_version(self):
        query = CPE.parse("cpe:/a:google:chrome")
        assert query.matches(CPE.parse("cpe:/a:google:chrome:50.0"))
        assert query.matches(CPE.parse("cpe:/a:google:chrome"))

    def test_version_query_is_exact(self):
        query = CPE.parse("cpe:/a:google:chrome:50.0")
        assert query.matches(CPE.parse("cpe:/a:google:chrome:50.0"))
        assert not query.matches(CPE.parse("cpe:/a:google:chrome:45.0"))
        assert not query.matches(CPE.parse("cpe:/a:google:chrome"))

    def test_different_vendor_never_matches(self):
        query = CPE.parse("cpe:/a:google:chrome")
        assert not query.matches(CPE.parse("cpe:/a:mozilla:firefox"))

    def test_different_part_never_matches(self):
        assert not CPE.parse("cpe:/a:x:y").matches(CPE.parse("cpe:/o:x:y"))

    def test_without_version_strips(self):
        cpe = CPE.parse("cpe:/a:google:chrome:50.0")
        assert cpe.without_version() == CPE.parse("cpe:/a:google:chrome")


class TestOrdering:
    def test_cpes_are_sortable_and_hashable(self):
        a = CPE.parse("cpe:/a:google:chrome")
        b = CPE.parse("cpe:/a:mozilla:firefox")
        assert len({a, b, a}) == 2
        assert sorted([b, a])[0] == a
