"""Tests for the sensitivity analyses (repro.analysis.sensitivity)."""

import pytest

from repro.analysis.sensitivity import (
    calibration_sensitivity,
    perturbed_similarity,
    similarity_perturbation_sensitivity,
)
from repro.network.topologies import ring_network
from repro.nvd.datasets import paper_os_similarity
from repro.nvd.similarity import SimilarityTable


class TestPerturbedSimilarity:
    def test_zero_noise_is_identity(self):
        table = paper_os_similarity()
        clone = perturbed_similarity(table, 0.0, seed=1)
        for a in table.products:
            for b in table.products:
                assert clone.get(a, b) == pytest.approx(table.get(a, b))

    def test_zeros_stay_zero(self):
        table = SimilarityTable(products=["a", "b"], pairs={})
        clone = perturbed_similarity(table, 0.5, seed=1)
        assert clone.get("a", "b") == 0.0

    def test_values_stay_bounded(self):
        table = SimilarityTable(pairs={("a", "b"): 0.9})
        for seed in range(10):
            clone = perturbed_similarity(table, 0.5, seed=seed)
            assert 0.0 <= clone.get("a", "b") <= 1.0

    def test_deterministic(self):
        table = paper_os_similarity()
        a = perturbed_similarity(table, 0.3, seed=7)
        b = perturbed_similarity(table, 0.3, seed=7)
        for x in table.products:
            for y in table.products:
                assert a.get(x, y) == b.get(x, y)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            perturbed_similarity(SimilarityTable(), 1.5, seed=0)


class TestPerturbationSensitivity:
    @pytest.fixture(scope="class")
    def setting(self):
        net = ring_network(8, services={"svc": ["p0", "p1", "p2"]})
        table = SimilarityTable(
            pairs={("p0", "p1"): 0.6, ("p1", "p2"): 0.2, ("p0", "p2"): 0.4}
        )
        return net, table

    def test_result_structure(self, setting):
        net, table = setting
        results = similarity_perturbation_sensitivity(
            net, table, noise_levels=(0.1,), seeds=(0, 1)
        )
        assert len(results) == 2
        for result in results:
            assert 0.0 <= result.agreement <= 1.0
            assert result.regret >= -1e-9  # original can never beat re-optimum

    def test_small_noise_high_agreement(self, setting):
        net, table = setting
        results = similarity_perturbation_sensitivity(
            net, table, noise_levels=(0.02,), seeds=(0, 1, 2)
        )
        assert min(r.agreement for r in results) >= 0.5

    def test_row_format(self, setting):
        net, table = setting
        result = similarity_perturbation_sensitivity(
            net, table, noise_levels=(0.1,), seeds=(0,)
        )[0]
        assert "agreement=" in result.row()


class TestCalibrationSensitivity:
    def test_grid_and_ordering(self):
        cells = calibration_sensitivity(
            p_avgs=(0.05, 0.1), p_maxs=(0.25, 0.3),
        )
        assert len(cells) == 4
        # The reproduced shape must hold across this neighbourhood of the
        # default calibration, not just at the default point.
        assert all(cell.optimal_wins for cell in cells)
        assert sum(cell.ordering_holds for cell in cells) >= 3

    def test_invalid_combinations_skipped(self):
        cells = calibration_sensitivity(p_avgs=(0.3,), p_maxs=(0.2,))
        assert cells == []

    def test_row_format(self):
        cells = calibration_sensitivity(p_avgs=(0.1,), p_maxs=(0.3,))
        assert "optimal=" in cells[0].row()
