"""Unit tests for CVE records (repro.nvd.cve)."""

import pytest

from repro.nvd.cpe import CPE
from repro.nvd.cve import CVERecord, CVEError


def chrome():
    return CPE.parse("cpe:/a:google:chrome:50.0")


class TestConstruction:
    def test_build_formats_identifier(self):
        record = CVERecord.build(2016, 7153, [chrome()])
        assert record.cve_id == "CVE-2016-7153"
        assert record.year == 2016

    def test_build_pads_serial(self):
        assert CVERecord.build(2016, 12, []).cve_id == "CVE-2016-0012"

    def test_long_serials_allowed(self):
        assert CVERecord.build(2016, 123456, []).cve_id == "CVE-2016-123456"

    def test_malformed_identifier_rejected(self):
        with pytest.raises(CVEError):
            CVERecord(cve_id="CVE-16-1", year=2016)

    def test_year_mismatch_rejected(self):
        with pytest.raises(CVEError):
            CVERecord(cve_id="CVE-2016-0001", year=2015)

    @pytest.mark.parametrize("score", [-0.1, 10.1])
    def test_cvss_out_of_range_rejected(self, score):
        with pytest.raises(CVEError):
            CVERecord.build(2016, 1, [], cvss=score)

    def test_affected_normalised_to_tuple(self):
        record = CVERecord(cve_id="CVE-2016-0001", year=2016, affected=[chrome()])
        assert isinstance(record.affected, tuple)


class TestQueries:
    def test_affects_matches_product_query(self):
        record = CVERecord.build(2016, 1, [chrome()])
        assert record.affects(CPE.parse("cpe:/a:google:chrome"))
        assert not record.affects(CPE.parse("cpe:/a:mozilla:firefox"))

    def test_affected_products_strips_versions(self):
        record = CVERecord.build(
            2016,
            1,
            [CPE.parse("cpe:/a:google:chrome:50.0"), CPE.parse("cpe:/a:google:chrome:45.0")],
        )
        assert record.affected_products() == {CPE.parse("cpe:/a:google:chrome")}

    def test_multi_product_record(self):
        record = CVERecord.build(
            2016,
            7153,
            [
                CPE.parse("cpe:/a:microsoft:edge"),
                CPE.parse("cpe:/a:google:chrome"),
                CPE.parse("cpe:/a:apple:safari"),
            ],
        )
        assert len(record.affected_products()) == 3
