"""Direct network→plan compiler parity + solver-scratch reuse.

The contract under test (see ``repro/core/compile.py``):

* :func:`compile_plan` produces a plan **byte-identical** to
  ``MRFArrays(build_mrf(...).mrf)`` — every node array, the deduplicated
  cost stack (including transpose-orientation entries), the edge arrays,
  message slots, γ weights and wavefront levels — across preferences,
  service weights, Fix/Forbid and combination constraints, heterogeneous
  per-host ranges and disconnected variables.
* :func:`compile_stream_parts` reproduces the :class:`StreamPlan` build
  (paired dedup, flipped edges, per-edge link/service keys) so the
  streaming engine's cold rebuilds keep their event-path alignment.
* ``diversify`` routed through the compiler returns the same result as the
  classic ``compile="python"`` pipeline.
* A shared :class:`SolverScratch` never changes solver results — with or
  without reuse, across repeated solves and across different plans.
"""

import numpy as np
import pytest

from repro.core.compile import (
    compile_plan,
    compile_stream_parts,
    network_energy,
)
from repro.core.costs import build_mrf
from repro.core.diversify import diversify
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.sharded import ShardedSolver, solve_plan
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays, SolverScratch
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.model import Network
from repro.network.zones import Zone, ZonedNetwork
from repro.nvd.similarity import SimilarityTable

# ---------------------------------------------------------------- fixtures


def workload(hosts=24, degree=4, services=3, seed=0, products=4):
    config = RandomNetworkConfig(
        hosts=hosts,
        degree=degree,
        services=services,
        products_per_service=products,
        seed=seed,
    )
    return random_network(config), random_similarity(config)


def heterogeneous_network():
    """Per-host ranges that force transpose-orientation stack entries."""
    net = Network()
    net.add_host("a", {"os": ["w", "l", "m"], "db": ["d1", "d2"]})
    net.add_host("b", {"os": ["w", "l"], "db": ["d1", "d2", "d3"]})
    net.add_host("c", {"os": ["w", "l", "m"]})
    net.add_host("d", {"os": ["w", "l"]})
    net.add_host("lonely", {"ssh": ["s1", "s2"]})  # no links at all
    net.add_links([("a", "b"), ("b", "c"), ("c", "d"), ("a", "d")])
    table = SimilarityTable(
        products=["w", "l", "m", "d1", "d2", "d3", "s1", "s2"],
        pairs={("w", "l"): 0.4, ("w", "m"): 0.2, ("d1", "d2"): 0.7},
    )
    return net, table


_PLAN_ARRAYS = (
    "label_counts", "mask", "unary", "unary_inf", "cost",
    "edge_first", "edge_second", "edge_cid",
    "slot_sender", "slot_receiver", "slot_reverse", "slot_cid", "slot_pad",
    "gamma",
)
_LEVEL_ARRAYS = (
    "nodes", "ext_seg", "ext_nbr", "ext_in", "ext_cid",
    "snd", "rcv", "out", "inn", "cid", "gam", "pad",
    "all_seg", "all_nbr", "all_cid",
)
_BLOCK_ARRAYS = ("snd", "rcv", "out", "inn", "cid", "gam", "pad")


def assert_plans_identical(reference: MRFArrays, compiled: MRFArrays):
    """Byte-level equality of every array a solver consumes."""
    assert reference.node_count == compiled.node_count
    assert reference.edge_count == compiled.edge_count
    assert reference.lmax == compiled.lmax
    assert reference.stacked == compiled.stacked
    for name in _PLAN_ARRAYS:
        left, right = getattr(reference, name), getattr(compiled, name)
        assert left.shape == right.shape, name
        assert np.array_equal(left, right, equal_nan=True), name
    assert len(reference.fwd_levels) == len(compiled.fwd_levels)
    for ref_level, new_level in zip(reference.fwd_levels, compiled.fwd_levels):
        for name in _LEVEL_ARRAYS:
            assert np.array_equal(
                getattr(ref_level, name), getattr(new_level, name)
            ), f"fwd {name}"
    assert len(reference.bwd_levels) == len(compiled.bwd_levels)
    for ref_block, new_block in zip(reference.bwd_levels, compiled.bwd_levels):
        for name in _BLOCK_ARRAYS:
            assert np.array_equal(
                getattr(ref_block, name), getattr(new_block, name)
            ), f"bwd {name}"


def reference_plan(net, sim, **kwargs) -> MRFArrays:
    return MRFArrays(build_mrf(net, sim, **kwargs).mrf)


# ------------------------------------------------------- plan parity suite


class TestCompileParity:
    def test_plain_workload(self):
        net, sim = workload(seed=1)
        assert_plans_identical(
            reference_plan(net, sim), compile_plan(net, sim).plan
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_random_seeds(self, seed):
        net, sim = workload(hosts=16, degree=3, services=2, seed=seed)
        assert_plans_identical(
            reference_plan(net, sim), compile_plan(net, sim).plan
        )

    def test_preferences_and_service_weights(self):
        net, sim = workload(seed=2)
        prefs = {
            ("h0", "s0", "s0_p1"): -0.3,
            ("h3", "s1", "s1_p2"): 0.25,
            ("h5", "s2", "not_a_product"): 9.0,  # ignored, like the builder
        }
        weights = {"s0": 2.0, "s2": 0.5}
        kwargs = dict(
            preferences=prefs,
            service_weights=weights,
            pairwise_weight=1.5,
            unary_constant=0.02,
        )
        assert_plans_identical(
            reference_plan(net, sim, **kwargs),
            compile_plan(net, sim, **kwargs).plan,
        )

    def test_fix_forbid_and_combination_constraints(self):
        net, sim = workload(seed=3)
        constraints = ConstraintSet(
            [
                FixProduct("h0", "s0", "s0_p2"),
                ForbidProduct("h1", "s1", "s1_p0"),
                ForbidProduct("h0", "s0", "s0_p3"),  # stacks on the fix
                RequireCombination(GLOBAL, "s0", "s0_p1", "s1", "s1_p2"),
                AvoidCombination("h2", "s1", "s1_p1", "s2", "s2_p2"),
            ]
        )
        assert_plans_identical(
            reference_plan(net, sim, constraints=constraints),
            compile_plan(net, sim, constraints=constraints).plan,
        )

    def test_heterogeneous_ranges_and_isolated_host(self):
        net, sim = heterogeneous_network()
        assert_plans_identical(
            reference_plan(net, sim), compile_plan(net, sim).plan
        )

    def test_energies_equal_exactly(self):
        net, sim = workload(seed=4)
        reference = reference_plan(net, sim)
        compiled = compile_plan(net, sim).plan
        rng = np.random.default_rng(0)
        for _ in range(5):
            labels = rng.integers(0, compiled.label_counts)
            assert compiled.energy(labels) == reference.energy(labels)

    def test_validation_matches_builder(self):
        net, sim = workload(seed=1)
        with pytest.raises(ValueError):
            compile_plan(net, sim, pairwise_weight=-1.0)
        with pytest.raises(ValueError):
            compile_plan(net, sim, service_weights={"s0": -2.0})

    def test_variable_mapping_matches_builder(self):
        net, sim = workload(seed=5)
        build = build_mrf(net, sim)
        compiled = compile_plan(net, sim)
        assert compiled.variables == build.variables
        assert compiled.index == build.index
        assert compiled.candidates == build.candidates

    def test_labels_roundtrip(self):
        net, sim = workload(seed=6)
        compiled = compile_plan(net, sim)
        rng = np.random.default_rng(1)
        labels = [int(x) for x in rng.integers(0, compiled.plan.label_counts)]
        assignment = compiled.labels_to_assignment(net, labels)
        assert compiled.assignment_to_labels(assignment) == labels


# ------------------------------------------------- stream parts convention


class TestStreamPartsParity:
    def test_matches_oriented_energies(self):
        net, sim = workload(seed=7)
        reference = reference_plan(net, sim)
        parts = compile_stream_parts(net, sim)
        plan = MRFArrays.from_dense(
            parts.unary,
            parts.label_counts,
            parts.edge_first,
            parts.edge_second,
            parts.edge_cid,
            parts.matrices,
        )
        rng = np.random.default_rng(2)
        for _ in range(5):
            labels = rng.integers(0, plan.label_counts)
            assert plan.energy(labels) == reference.energy(labels)

    def test_paired_dedup_and_flip(self):
        net, sim = heterogeneous_network()
        parts = compile_stream_parts(net, sim)
        # One matrix per unordered (range, range, weight) key: the (3,2)
        # os pairing and the (2,3) db pairing — never a transpose entry.
        assert len(parts.matrices) == 2
        for matrix, (range_a, range_b, weight) in zip(
            parts.matrices, parts.matrix_meta
        ):
            assert matrix.shape == (len(range_a), len(range_b))
        # Flipped edges price through the stored orientation.
        for e in range(len(parts.edge_first)):
            cid = int(parts.edge_cid[e])
            range_a, range_b, _w = parts.matrix_meta[cid]
            assert parts.candidates[int(parts.edge_first[e])] == range_a
            assert parts.candidates[int(parts.edge_second[e])] == range_b

    def test_edge_keys_align(self):
        net, sim = workload(hosts=10, degree=3, services=2, seed=8)
        parts = compile_stream_parts(net, sim)
        assert len(parts.edge_keys) == len(parts.edge_first)
        for e, (link, service) in enumerate(parts.edge_keys):
            a, b = link
            assert a <= b
            endpoints = {
                parts.variables[int(parts.edge_first[e])],
                parts.variables[int(parts.edge_second[e])],
            }
            assert endpoints == {(a, service), (b, service)}


# ------------------------------------------------------ diversify routing


class TestDiversifyRouting:
    def test_direct_equals_python_pipeline(self):
        net, sim = workload(seed=9)
        direct = diversify(net, sim, fast_path=False)
        classic = diversify(net, sim, fast_path=False, compile="python")
        assert direct.energy == pytest.approx(classic.energy)
        assert direct.assignment.as_dict() == classic.assignment.as_dict()
        assert direct.plan is not None and direct.build is None
        assert classic.build is not None and classic.plan is None

    def test_constrained_direct_equals_python(self):
        net, sim = workload(seed=10)
        constraints = ConstraintSet(
            [
                FixProduct("h0", "s0", "s0_p1"),
                AvoidCombination(GLOBAL, "s0", "s0_p0", "s1", "s1_p0"),
            ]
        )
        direct = diversify(net, sim, constraints=constraints, fast_path=False)
        classic = diversify(
            net, sim, constraints=constraints, fast_path=False,
            compile="python",
        )
        assert direct.energy == pytest.approx(classic.energy)
        assert direct.satisfied == classic.satisfied

    def test_bp_routes_through_compiler(self):
        net, sim = workload(seed=11)
        direct = diversify(net, sim, solver="bp", fast_path=False)
        classic = diversify(
            net, sim, solver="bp", fast_path=False, compile="python"
        )
        assert direct.plan is not None
        assert direct.energy == pytest.approx(classic.energy)

    def test_non_plan_solver_uses_python_pipeline(self):
        net, sim = workload(hosts=6, degree=2, services=1, seed=12)
        result = diversify(net, sim, solver="icm")
        assert result.plan is None and result.build is not None

    def test_invalid_compile_value(self):
        net, sim = workload(seed=1)
        with pytest.raises(ValueError):
            diversify(net, sim, compile="rust")

    def test_forest_dispatch_matches(self):
        from repro.network.topologies import chain_network

        table = SimilarityTable(products=["p0", "p1"])
        table.set("p0", "p1", 0.8)
        net = chain_network(5)
        direct = diversify(net, table, fast_path=False)
        classic = diversify(net, table, fast_path=False, compile="python")
        assert direct.energy == pytest.approx(classic.energy)
        assert direct.certified_optimal and classic.certified_optimal


# ----------------------------------------------------------- zone sharding


class TestZoneShards:
    def zoned_workload(self):
        zones = [
            Zone("it", ("a", "b", "c"), topology="chain"),
            Zone("ot", ("d", "e"), topology="chain"),
            Zone("dmz", ("f",)),
        ]
        zoned = ZonedNetwork(zones, rules=[])  # air-gapped
        spec = {"os": ["w", "l", "m"], "db": ["d1", "d2"]}
        net = zoned.build_network({h: spec for h in zoned.hosts()})
        sim = SimilarityTable(
            products=["w", "l", "m", "d1", "d2"],
            pairs={("w", "l"): 0.5, ("l", "m"): 0.3, ("d1", "d2"): 0.6},
        )
        return net, sim, zoned

    def test_zone_shards_exact(self):
        net, sim, zoned = self.zoned_workload()
        mono = diversify(net, sim, fast_path=False)
        zone_sharded = diversify(
            net, sim, fast_path=False, shards="zones", zones=zoned
        )
        assert zone_sharded.energy == pytest.approx(mono.energy, abs=1e-9)
        assert zone_sharded.solver_result.solver == "trws-sharded"

    def test_zone_shards_python_pipeline(self):
        net, sim, zoned = self.zoned_workload()
        mono = diversify(net, sim, fast_path=False)
        zone_sharded = diversify(
            net, sim, fast_path=False, shards="zones", zones=zoned,
            compile="python",
        )
        assert zone_sharded.energy == pytest.approx(mono.energy, abs=1e-9)

    def test_zones_required(self):
        net, sim, _zoned = self.zoned_workload()
        with pytest.raises(ValueError):
            diversify(net, sim, shards="zones")

    def test_scalability_cell_accepts_zones(self):
        from repro.experiments import scalability_cell

        config = RandomNetworkConfig(hosts=24, degree=3, services=2, seed=0)
        mono = scalability_cell(config)
        zoned = scalability_cell(config, shards="zones")
        assert zoned.energy == pytest.approx(mono.energy, abs=1e-9)

    def test_cli_parses_zone_shards(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["table7", "--shards", "zones"])
        assert args.shards == "zones"
        args = build_parser().parse_args(["table7", "--shards", "4"])
        assert args.shards == 4


# -------------------------------------------------------- vectorized energy


class TestNetworkEnergy:
    def test_matches_mrf_energy(self):
        net, sim = workload(seed=13)
        build = build_mrf(net, sim)
        rng = np.random.default_rng(3)
        plan = compile_plan(net, sim)
        labels = [int(x) for x in rng.integers(0, plan.plan.label_counts)]
        assignment = build.labels_to_assignment(net, labels)
        assert network_energy(net, sim, assignment) == pytest.approx(
            build.mrf.energy(labels)
        )

    def test_partial_assignment_skips_uncoupled(self):
        net, sim = heterogeneous_network()
        build = build_mrf(net, sim)
        assignment = build.labels_to_assignment(
            net, [0] * len(build.variables)
        )
        assignment.unassign("a", "os")
        # Unassigned endpoints contribute no pairwise cost; the unary
        # term still counts variables — the reference loop's semantics.
        expected = 0.01 * net.variable_count() + _coupled_total(
            net, sim, assignment
        )
        assert network_energy(net, sim, assignment) == pytest.approx(expected)

    def test_weighted(self):
        net, sim = workload(seed=14)
        build = build_mrf(net, sim, service_weights={"s0": 2.0})
        labels = [0] * len(build.variables)
        assignment = build.labels_to_assignment(net, labels)
        assert network_energy(
            net, sim, assignment, service_weights={"s0": 2.0}
        ) == pytest.approx(build.mrf.energy(labels))


def _coupled_total(net, sim, assignment):
    total = 0.0
    for a, b in net.links:
        for service in net.shared_services(a, b):
            pa, pb = assignment.get(a, service), assignment.get(b, service)
            if pa is not None and pb is not None:
                total += sim.get(pa, pb)
    return total


# --------------------------------------------------------- scratch parity


class TestSolverScratch:
    def test_buffers_grow_and_alias(self):
        scratch = SolverScratch()
        small = scratch.array("x", (2, 3))
        small.fill(7.0)
        again = scratch.array("x", (2, 3))
        assert np.all(again == 7.0)  # same storage, no reallocation
        bigger = scratch.array("x", (4, 5))
        assert bigger.shape == (4, 5)
        zeros = scratch.zeros("x", (2, 2))
        assert np.all(zeros == 0.0)

    def test_trws_results_identical_with_shared_scratch(self):
        scratch = SolverScratch()
        for seed in range(3):
            net, sim = workload(hosts=14, degree=4, services=2, seed=seed)
            plan = compile_plan(net, sim).plan
            fresh = TRWSSolver().solve_arrays(plan)
            shared = TRWSSolver().solve_arrays(plan, scratch=scratch)
            assert shared.labels == fresh.labels
            assert shared.energy == fresh.energy
            assert shared.lower_bound == fresh.lower_bound
            assert shared.iterations == fresh.iterations

    def test_bp_results_identical_with_shared_scratch(self):
        scratch = SolverScratch()
        for seed in range(3):
            net, sim = workload(hosts=14, degree=4, services=2, seed=seed)
            plan = compile_plan(net, sim).plan
            fresh = LoopyBPSolver().solve_arrays(plan)
            shared = LoopyBPSolver().solve_arrays(plan, scratch=scratch)
            assert shared.labels == fresh.labels
            assert shared.energy == fresh.energy

    def test_repeated_solves_reuse_without_drift(self):
        net, sim = workload(hosts=20, degree=4, services=2, seed=4)
        plan = compile_plan(net, sim).plan
        scratch = SolverScratch()
        solver = TRWSSolver()
        first = solver.solve_arrays(plan, scratch=scratch)
        for _ in range(3):
            again = solver.solve_arrays(plan, scratch=scratch)
            assert again.labels == first.labels
            assert again.energy == first.energy

    def test_warm_start_with_scratch(self):
        net, sim = workload(hosts=16, degree=3, services=2, seed=5)
        plan = compile_plan(net, sim).plan
        scratch = SolverScratch()
        messages_a = plan.zero_messages()
        messages_b = plan.zero_messages()
        with_scratch = TRWSSolver().solve_arrays(
            plan, messages=messages_a, scratch=scratch
        )
        without = TRWSSolver().solve_arrays(plan, messages=messages_b)
        assert with_scratch.labels == without.labels
        assert np.array_equal(messages_a, messages_b)

    def test_sharded_solver_matches_serial(self):
        net, sim = workload(hosts=30, degree=3, services=3, seed=6)
        plan = compile_plan(net, sim).plan
        threaded = ShardedSolver(solver="trws", workers=4).solve_arrays(plan)
        serial = ShardedSolver(
            solver="trws", workers=1, executor="serial"
        ).solve_arrays(plan)
        assert threaded.labels == serial.labels
        assert threaded.energy == serial.energy

    def test_solve_plan_matches_mrf_solve(self):
        net, sim = workload(hosts=18, degree=4, services=2, seed=7)
        build = build_mrf(net, sim)
        compiled = compile_plan(net, sim)
        via_plan = solve_plan(compiled.plan, solver="trws")
        via_mrf = TRWSSolver().solve(build.mrf)
        assert via_plan.labels == via_mrf.labels
        assert via_plan.energy == pytest.approx(via_mrf.energy)


# ------------------------------------------------------- wavefront levels


def _jacobi_levels(n, src, dst):
    """The textbook fixpoint — reference for both production branches."""
    level = np.zeros(n, dtype=np.int64)
    while len(src):
        deeper = level.copy()
        np.maximum.at(deeper, dst, level[src] + 1)
        if np.array_equal(deeper, level):
            break
        level = deeper
    return level


class TestWavefrontLevels:
    """wavefront_schedule size-dispatches between two exact level
    implementations (Jacobi rounds below ~4k edges, Kahn waves above);
    both must equal the reference fixpoint — the big-plan branch is not
    reachable from the small fixtures elsewhere in the suite."""

    def _check(self, n, lo, hi):
        from repro.mrf.vectorized import wavefront_schedule

        _gamma, flevel, blevel = wavefront_schedule(n, lo, hi)
        assert np.array_equal(flevel, _jacobi_levels(n, lo, hi))
        assert np.array_equal(blevel, _jacobi_levels(n, hi, lo))

    def test_kahn_branch_random_dag(self):
        rng = np.random.default_rng(0)
        n, m = 3000, 9000  # > 4096 edges → Kahn wave branch
        lo = rng.integers(0, n - 1, m)
        hi = lo + 1 + rng.integers(0, np.maximum(1, n - 1 - lo))
        self._check(n, lo.astype(np.int64), hi.astype(np.int64))

    def test_kahn_branch_deep_chain(self):
        n = 6000  # 5999 chain edges → Kahn branch at full depth
        lo = np.arange(n - 1, dtype=np.int64)
        hi = lo + 1
        from repro.mrf.vectorized import wavefront_schedule

        _gamma, flevel, blevel = wavefront_schedule(n, lo, hi)
        assert np.array_equal(flevel, np.arange(n))
        assert np.array_equal(blevel, np.arange(n)[::-1])

    def test_jacobi_branch_small(self):
        rng = np.random.default_rng(1)
        n, m = 40, 90  # < 4096 edges → Jacobi branch
        lo = rng.integers(0, n - 1, m)
        hi = lo + 1 + rng.integers(0, np.maximum(1, n - 1 - lo))
        self._check(n, lo.astype(np.int64), hi.astype(np.int64))

    def test_isolated_nodes_stay_level_zero(self):
        lo = np.asarray([2, 3], dtype=np.int64)
        hi = np.asarray([4, 5], dtype=np.int64)
        self._check(8, lo, hi)


# ------------------------------------------------ stream rebuild via parts


class TestStreamRebuildCompiled:
    def test_rebuild_state_consistent_with_events(self):
        from repro.stream.plan import StreamPlan

        net, sim = workload(hosts=12, degree=3, services=2, seed=8)
        stream = StreamPlan(net.copy(), sim.copy())
        # The compiled rebuild installs list-typed event-path state.
        assert isinstance(stream._edge_first, list)
        assert isinstance(stream._edge_keys, list)
        assert len(stream._edge_keys) == stream.edge_count
        assert len(stream._matrix_ids) == len(stream._matrices)
        # Event application on top of a compiled rebuild stays aligned:
        # dropping a link removes exactly its (link, service) edges.
        a, b = stream.network.links[0]
        from repro.stream.events import LinkRemove

        shared = len(stream.network.shared_services(a, b))
        before = stream.edge_count
        stream.apply(LinkRemove(a=a, b=b))
        assert stream.edge_count == before - shared
        stream.flush()
        assert stream.plan.edge_count == before - shared

    def test_cold_solve_energy_matches_batch_pipeline(self):
        from repro.stream.incremental import DynamicDiversifier

        net, sim = workload(hosts=12, degree=3, services=2, seed=9)
        engine = DynamicDiversifier(net.copy(), sim.copy())
        streamed = engine.solve()
        batch = diversify(net, sim, fast_path=False)
        assert streamed.energy == pytest.approx(batch.energy)
