"""Tests for the tracing/telemetry layer (repro.obs).

Three contracts matter:

1. **Disabled means free** — with no active trace, the instrumentation
   hooks allocate nothing (the no-op span/timer are shared singletons)
   and solver results carry no stats.
2. **The Chrome export is schema-correct** — Perfetto and
   ``chrome://tracing`` load exactly the documented event shape, so the
   exporter is held to it field by field.
3. **Spans merge across threads and processes** — the sharded fan-out and
   the runner's process pools land their spans in the parent timeline
   with their own pid/tid.
"""

import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import SolveStats, get_solver
from repro.obs.report import format_summary, layer_seconds, self_durations, span_table
from repro.runner import Job, run_jobs


@pytest.fixture(autouse=True)
def _no_ambient_trace():
    """Every test starts and ends with tracing disabled."""
    obs.deactivate()
    yield
    obs.deactivate()


def _loopy_mrf(nodes=6):
    """A small frustrated ring: forces the real TRW-S sweep path."""
    mrf = PairwiseMRF()
    for i in range(nodes):
        mrf.add_node([0.1 * i, 0.0])
    agree = np.array([[1.0, 0.0], [0.0, 1.0]])
    for i in range(nodes):
        mrf.add_edge(i, (i + 1) % nodes, agree)
    return mrf


# --------------------------------------------------------------- disabled path


class TestDisabledPath:
    def test_span_returns_shared_singleton(self):
        # Identity, not equality: the disabled path must not allocate a
        # span object per call.
        assert obs.span("a") is obs.span("b")
        assert obs.span("a", cat="solve", x=1) is obs.span("c")

    def test_phase_timer_returns_shared_singleton(self):
        assert obs.phase_timer() is obs.phase_timer("compile")

    def test_noop_span_usable(self):
        with obs.span("ignored", cat="x", a=1) as sp:
            sp.add(b=2)  # silently discarded

    def test_noop_timer_usable(self):
        obs.phase_timer().lap("ignored", n=3)

    def test_instant_and_counter_are_noops(self):
        obs.instant("nothing")
        obs.add_counter("nothing", 2.0)
        assert obs.current_trace() is None

    def test_enabled_reflects_activation(self):
        assert not obs.enabled()
        trace = obs.activate(obs.Trace())
        assert obs.enabled()
        assert obs.deactivate() is trace
        assert not obs.enabled()

    def test_solver_results_carry_no_stats_when_disabled(self):
        result = get_solver("trws").solve(_loopy_mrf())
        assert result.stats is None

    def test_noop_exit_propagates_exceptions(self):
        with pytest.raises(RuntimeError):
            with obs.span("x"):
                raise RuntimeError("boom")


# -------------------------------------------------------------- chrome export


class TestChromeExport:
    def test_complete_event_schema(self):
        trace = obs.activate(obs.Trace())
        with obs.span("outer", cat="demo", items=3):
            pass
        obs.deactivate()
        payload = trace.chrome()
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["name"] == "outer"
        assert event["cat"] == "demo"
        assert event["ph"] == "X"
        assert isinstance(event["ts"], float) and event["ts"] > 0
        assert isinstance(event["dur"], float) and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["args"] == {"items": 3}

    def test_instant_event_schema(self):
        trace = obs.activate(obs.Trace())
        obs.instant("marker", cat="stream", reason="cost_jump")
        obs.deactivate()
        (event,) = trace.events
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert "dur" not in event
        assert event["args"]["reason"] == "cost_jump"

    def test_payload_is_json_serialisable(self, tmp_path):
        trace = obs.activate(obs.Trace())
        with obs.span("a", cat="x"):
            obs.add_counter("widgets", 2)
        obs.deactivate()
        path = tmp_path / "trace.json"
        trace.write_chrome(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"][0]["name"] == "a"
        assert loaded["otherData"]["counters"] == {"widgets": 2.0}

    def test_jsonl_one_event_per_line(self):
        trace = obs.activate(obs.Trace())
        with obs.span("a"):
            pass
        obs.instant("b")
        obs.deactivate()
        lines = trace.jsonl().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "a"

    def test_error_spans_tag_the_exception(self):
        trace = obs.activate(obs.Trace())
        with pytest.raises(ValueError):
            with obs.span("failing"):
                raise ValueError("nope")
        obs.deactivate()
        assert trace.events[0]["args"]["error"] == "ValueError"

    def test_ring_buffer_keeps_the_tail(self):
        trace = obs.activate(obs.Trace(limit=3))
        for i in range(10):
            obs.instant(f"e{i}")
        obs.deactivate()
        assert [e["name"] for e in trace.events] == ["e7", "e8", "e9"]

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            obs.Trace(limit=0)


# ------------------------------------------------------------- span structure


class TestSpans:
    def test_nesting_by_time_containment(self):
        trace = obs.activate(obs.Trace())
        with obs.span("outer", cat="demo"):
            with obs.span("inner", cat="demo"):
                pass
        obs.deactivate()
        inner, outer = trace.events
        assert inner["name"] == "inner" and outer["name"] == "outer"
        # Viewers nest X events by time containment per (pid, tid) lane.
        assert inner["pid"] == outer["pid"]
        assert inner["tid"] == outer["tid"]
        assert outer["ts"] <= inner["ts"]
        assert outer["dur"] >= inner["dur"]

    def test_phase_timer_records_back_to_back_laps(self):
        trace = obs.activate(obs.Trace())
        timer = obs.phase_timer("compile")
        timer.lap("one", n=1)
        timer.lap("two")
        obs.deactivate()
        one, two = trace.events
        assert one["name"] == "one" and one["args"] == {"n": 1}
        assert two["name"] == "two" and "args" not in two
        assert one["cat"] == two["cat"] == "compile"
        assert one["ts"] <= two["ts"]

    def test_span_add_attaches_args(self):
        trace = obs.activate(obs.Trace())
        with obs.span("s", cat="x", a=1) as sp:
            sp.add(b=2)
        obs.deactivate()
        assert trace.events[0]["args"] == {"a": 1, "b": 2}

    def test_solver_stats_collected_when_enabled(self):
        solver = get_solver("trws")
        mrf = _loopy_mrf()
        baseline = solver.solve(mrf)
        trace = obs.activate(obs.Trace())
        traced = solver.solve(mrf)
        obs.deactivate()
        assert traced.energy == baseline.energy  # tracing never perturbs
        stats = traced.stats
        assert isinstance(stats, SolveStats)
        assert stats.total_seconds > 0
        assert len(stats.iteration_seconds) == traced.iterations
        assert stats.fwd_level_seconds and stats.bwd_level_seconds
        phases = stats.phase_seconds()
        assert set(phases) == {
            "setup", "forward", "backward", "bound", "energy", "refine",
        }
        assert "trws.solve" in trace.span_names()


# ------------------------------------------------------ cross-process capture


def _worker_with_span(value):
    """Worker-side job body recording one span (runs in a pool process)."""
    with obs.span("worker.task", cat="worker", value=value):
        return value * 2


class TestCrossProcess:
    def test_capture_roundtrip(self):
        token = obs.begin_capture()
        with obs.span("captured", cat="w"):
            pass
        events = obs.end_capture(token)
        assert [e["name"] for e in events] == ["captured"]
        assert obs.current_trace() is None

    def test_capture_replaces_inherited_trace(self):
        # A fork-inherited parent trace is a child-memory copy; capture
        # must swap it out so worker spans are not silently lost.
        parent = obs.activate(obs.Trace())
        token = obs.begin_capture()
        assert obs.current_trace() is not parent
        with obs.span("in.capture"):
            pass
        events = obs.end_capture(token)
        assert obs.current_trace() is parent
        assert parent.events == []
        assert [e["name"] for e in events] == ["in.capture"]

    def test_extend_preserves_foreign_pids(self):
        trace = obs.Trace()
        trace.extend([
            {"name": "w", "cat": "x", "ph": "X", "ts": 1.0, "dur": 2.0,
             "pid": 4242, "tid": 1},
        ])
        assert trace.events[0]["pid"] == 4242

    def test_pool_spans_merge_into_parent_timeline(self):
        jobs = [
            Job(key=i, fn=_worker_with_span, kwargs={"value": i})
            for i in range(4)
        ]
        trace = obs.activate(obs.Trace())
        results = run_jobs(jobs, workers=2)
        obs.deactivate()
        assert results == {i: i * 2 for i in range(4)}
        worker_events = [
            e for e in trace.events if e["name"] == "worker.task"
        ]
        assert len(worker_events) == 4
        assert sorted(e["args"]["value"] for e in worker_events) == [0, 1, 2, 3]
        import os

        assert all(e["pid"] != os.getpid() for e in worker_events)

    def test_pool_results_clean_without_tracing(self):
        jobs = [
            Job(key=i, fn=_worker_with_span, kwargs={"value": i})
            for i in range(3)
        ]
        assert run_jobs(jobs, workers=2) == {i: i * 2 for i in range(3)}


# ------------------------------------------------------------------ reporting


def _event(name, cat, ts, dur, pid=1, tid=1):
    return {"name": name, "cat": cat, "ph": "X", "ts": ts, "dur": dur,
            "pid": pid, "tid": tid}


class TestReport:
    def test_self_time_subtracts_children(self):
        events = [
            _event("child", "solve", ts=10.0, dur=40.0),
            _event("parent", "stream", ts=0.0, dur=100.0),
        ]
        selves = self_durations(events)
        by_name = {events[i]["name"]: selves[i] for i in range(len(events))}
        assert by_name["child"] == 40.0
        assert by_name["parent"] == 60.0

    def test_layer_seconds_groups_by_cat(self):
        events = [
            _event("a", "solve", ts=0.0, dur=1_000_000.0),
            _event("b", "solve", ts=2e6, dur=1_000_000.0, tid=2),
            _event("c", "compile", ts=5e6, dur=500_000.0),
        ]
        layers = layer_seconds(events)
        assert layers["solve"] == pytest.approx(2.0)
        assert layers["compile"] == pytest.approx(0.5)
        assert list(layers) == ["solve", "compile"]  # sorted by share

    def test_span_table_counts_and_totals(self):
        events = [
            _event("x", "solve", ts=0.0, dur=1e6),
            _event("x", "solve", ts=2e6, dur=1e6),
            _event("y", "shard", ts=4e6, dur=5e5),
        ]
        rows = span_table(events)
        assert rows[0][:4] == ("x", "solve", 2, pytest.approx(2.0))
        assert rows[1][:4] == ("y", "shard", 1, pytest.approx(0.5))

    def test_format_summary_mentions_layers_and_counters(self):
        events = [_event("a.b", "solve", ts=0.0, dur=1e6)]
        text = format_summary(events, {"widgets": 3.0})
        assert "solve" in text and "a.b" in text and "widgets" in text

    def test_lanes_are_independent(self):
        # Same wall-clock window on different threads must not be treated
        # as nesting.
        events = [
            _event("t1", "solve", ts=0.0, dur=100.0, tid=1),
            _event("t2", "solve", ts=10.0, dur=50.0, tid=2),
        ]
        selves = self_durations(events)
        assert selves == [100.0, 50.0]


# -------------------------------------------------------------------- logging


class TestLogging:
    def test_parse_level(self):
        from repro.obs.logging import parse_level

        assert parse_level("debug") == logging.DEBUG
        assert parse_level("ERROR") == logging.ERROR
        with pytest.raises(ValueError):
            parse_level("chatty")

    def test_structured_line_format(self):
        import io

        from repro.obs.logging import get_logger, kv, setup_logging

        stream = io.StringIO()
        setup_logging("debug", stream=stream)
        get_logger("test").info("solved batch", extra=kv(events=3, warm=True))
        line = stream.getvalue().strip()
        assert " info " in line
        assert "repro.test" in line
        assert "solved batch" in line
        assert "events=3" in line and "warm=True" in line

    def test_level_threshold(self):
        import io

        from repro.obs.logging import get_logger, setup_logging

        stream = io.StringIO()
        setup_logging("warning", stream=stream)
        get_logger("test").info("hidden")
        get_logger("test").warning("visible")
        text = stream.getvalue()
        assert "hidden" not in text and "visible" in text

    def test_setup_is_idempotent(self):
        import io

        from repro.obs.logging import get_logger, setup_logging

        stream = io.StringIO()
        setup_logging("info", stream=stream)
        setup_logging("info", stream=stream)
        get_logger("test").warning("once")
        assert stream.getvalue().count("once") == 1


class TestTraceCli:
    """``repro trace`` end-to-end: workload under tracing + report files."""

    def _run(self, argv, capsys):
        from repro.cli import main

        assert main(argv) == 0
        return capsys.readouterr().out

    def test_trace_diversify_report(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        jsonl = tmp_path / "trace.jsonl"
        text = self._run(
            ["trace", "diversify", "--hosts", "10", "--degree", "2",
             "--services", "2", "--products", "3",
             "--out", str(out), "--jsonl", str(jsonl)],
            capsys,
        )
        assert "diversify: energy" in text
        assert f"wrote {out}" in text
        assert f"wrote {jsonl}" in text
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
        spans = [json.loads(line) for line in
                 jsonl.read_text().splitlines() if line]
        assert any(s.get("name") == "trws.solve" for s in spans)
        # the breakdown tables follow the file lines
        assert "self" in text or "total" in text

    def test_trace_stream_sharded_report(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        text = self._run(
            ["trace", "stream", "--hosts", "10", "--degree", "2",
             "--services", "2", "--products", "3", "--events", "3",
             "--out", str(out)],
            capsys,
        )
        assert "wrote" in text
        assert out.exists()
        # the sharded engine leaves shard solve spans in the trace
        payload = json.loads(out.read_text())
        names = {event.get("name") for event in payload["traceEvents"]}
        assert any(name and name.startswith("shard") for name in names)

    def test_trace_after_deactivate_leaves_recorder_clean(
        self, tmp_path, capsys
    ):
        self._run(
            ["trace", "diversify", "--hosts", "8", "--degree", "2",
             "--services", "2", "--products", "3",
             "--out", str(tmp_path / "t.json")],
            capsys,
        )
        assert not obs.enabled()
