"""Tests for standard topologies (repro.network.topologies)."""

import pytest

from repro.network.topologies import (
    MOTIVATIONAL_DIVERSIFIED,
    chain_network,
    complete_network,
    grid_network,
    motivational_network,
    ring_network,
    scale_free_network,
    star_network,
    tree_network,
)


class TestBasicShapes:
    def test_chain(self):
        net = chain_network(5)
        assert len(net) == 5
        assert net.edge_count() == 4
        assert net.degree("h0") == 1 and net.degree("h2") == 2

    def test_ring(self):
        net = ring_network(5)
        assert net.edge_count() == 5
        assert all(net.degree(h) == 2 for h in net.hosts)

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_network(2)

    def test_star(self):
        net = star_network(4)
        assert len(net) == 5
        assert net.degree("h0") == 4
        assert all(net.degree(f"h{i}") == 1 for i in range(1, 5))

    def test_grid(self):
        net = grid_network(3, 4)
        assert len(net) == 12
        assert net.edge_count() == 3 * 3 + 2 * 4  # horizontal + vertical
        assert net.degree("h0_0") == 2
        assert net.degree("h1_1") == 4

    def test_tree(self):
        net = tree_network(depth=2, branching=2)
        assert len(net) == 7
        assert net.edge_count() == 6
        assert net.degree("h0") == 2

    def test_tree_negative_depth(self):
        with pytest.raises(ValueError):
            tree_network(-1)

    def test_complete(self):
        net = complete_network(5)
        assert net.edge_count() == 10

    def test_scale_free(self):
        net = scale_free_network(60, attach=2, seed=1)
        assert len(net) == 60
        # seed clique K_3 plus 2 links per later host
        assert net.edge_count() == 3 + 2 * 57
        # single connected component (the "giant component" shape)
        seen, stack = {"h0"}, ["h0"]
        while stack:
            for peer in net.neighbors(stack.pop()):
                if peer not in seen:
                    seen.add(peer)
                    stack.append(peer)
        assert len(seen) == 60
        # heavy tail: some hub beats the attachment degree by a margin
        assert max(net.degree(h) for h in net.hosts) >= 6

    def test_scale_free_deterministic(self):
        first = scale_free_network(40, seed=9)
        again = scale_free_network(40, seed=9)
        assert sorted(first.links) == sorted(again.links)

    def test_scale_free_validation(self):
        with pytest.raises(ValueError):
            scale_free_network(2, attach=2)
        with pytest.raises(ValueError):
            scale_free_network(10, attach=0)

    def test_custom_services(self):
        net = chain_network(3, services={"db": ["x", "y", "z"]})
        assert net.candidates("h1", "db") == ("x", "y", "z")


class TestMotivational:
    def test_single_label_shape(self):
        net = motivational_network()
        assert len(net) == 8
        assert net.edge_count() == 7
        assert net.services_of("entry") == ["svc"]

    def test_multi_label_adds_square_service(self):
        net = motivational_network(multi_label=True)
        assert net.services_of("entry") == ["svc", "svc2"]
        assert net.candidates("m1", "svc2") == ("square",)
        assert net.services_of("target") == ["svc"]

    def test_diversified_labelling_covers_all_hosts(self):
        net = motivational_network()
        assert set(MOTIVATIONAL_DIVERSIFIED) == set(net.hosts)

    def test_diversified_labelling_alternates_on_path(self):
        path = ["entry", "m1", "m2", "target"]
        for a, b in zip(path, path[1:]):
            assert MOTIVATIONAL_DIVERSIFIED[a] != MOTIVATIONAL_DIVERSIFIED[b]
