"""Tests for attack-surface analysis (repro.metrics.surface)."""

import pytest

from repro.core.baselines import mono_assignment
from repro.metrics.surface import (
    attack_surface,
    criticality_ranking,
    host_risk_profile,
)
from repro.network.model import Network
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable
from repro.sim.malware import InfectionModel


def flat_model(rate):
    return InfectionModel(similarity=SimilarityTable(), p_avg=rate, p_max=rate)


@pytest.fixture
def chain():
    net = chain_network(4)
    return net, mono_assignment(net)


class TestAttackSurface:
    def test_per_entry_probabilities(self, chain):
        net, assignment = chain
        report = attack_surface(
            net, assignment, flat_model(0.5), entries=["h0", "h2"], target="h3"
        )
        assert report.per_entry["h0"] == pytest.approx(0.5**3)
        assert report.per_entry["h2"] == pytest.approx(0.5)
        assert report.worst_entry == "h2"
        assert report.worst == pytest.approx(0.5)

    def test_uniform_expectation(self, chain):
        net, assignment = chain
        report = attack_surface(
            net, assignment, flat_model(0.5), entries=["h0", "h2"], target="h3"
        )
        assert report.expected == pytest.approx((0.125 + 0.5) / 2)

    def test_custom_prior(self, chain):
        net, assignment = chain
        report = attack_surface(
            net, assignment, flat_model(0.5), entries=["h0", "h2"], target="h3",
            prior={"h0": 3.0, "h2": 1.0},
        )
        assert report.expected == pytest.approx(0.75 * 0.125 + 0.25 * 0.5)

    def test_empty_entries_rejected(self, chain):
        net, assignment = chain
        with pytest.raises(ValueError):
            attack_surface(net, assignment, flat_model(0.5), entries=[], target="h3")

    def test_zero_mass_prior_rejected(self, chain):
        net, assignment = chain
        with pytest.raises(ValueError):
            attack_surface(
                net, assignment, flat_model(0.5), entries=["h0"], target="h3",
                prior={"h1": 1.0},
            )

    def test_negative_prior_rejected(self, chain):
        net, assignment = chain
        with pytest.raises(ValueError):
            attack_surface(
                net, assignment, flat_model(0.5), entries=["h0"], target="h3",
                prior={"h0": -1.0},
            )

    def test_format(self, chain):
        net, assignment = chain
        report = attack_surface(
            net, assignment, flat_model(0.5), entries=["h0", "h2"], target="h3"
        )
        text = report.format()
        assert "worst" in text and "expected over entries" in text

    def test_case_study_entries(self):
        from repro.casestudy.stuxnet import stuxnet_case_study

        case = stuxnet_case_study()
        assignment = mono_assignment(case.network)
        model = InfectionModel(similarity=case.similarity, p_avg=0.1, p_max=0.3)
        report = attack_surface(
            case.network, assignment, model, entries=case.entries, target="t5"
        )
        assert set(report.per_entry) == set(case.entries)
        assert 0.0 < report.expected <= report.worst <= 1.0


class TestHostRiskProfile:
    def test_profile_covers_and_ranks(self, chain):
        net, assignment = chain
        profile = host_risk_profile(net, assignment, flat_model(0.5), "h0")
        assert [host for host, _ in profile] == ["h0", "h1", "h2", "h3"]
        values = [p for _, p in profile]
        assert values == sorted(values, reverse=True)
        assert values[0] == 1.0

    def test_unreachable_hosts_zero(self):
        net = Network()
        net.add_host("a", {"svc": ["x"]})
        net.add_host("lonely", {"svc": ["x"]})
        assignment = mono_assignment(net)
        profile = dict(host_risk_profile(net, assignment, flat_model(0.5), "a"))
        assert profile["lonely"] == 0.0


class TestCriticalityRanking:
    def test_bridge_link_dominates(self):
        # Two clusters joined by one bridge: severing the bridge zeroes the
        # target's risk; intra-cluster links matter less.
        net = Network()
        for name in ("e1", "e2", "bridgeL", "bridgeR", "t1", "t2"):
            net.add_host(name, {"svc": ["x"]})
        net.add_links(
            [("e1", "e2"), ("e1", "bridgeL"), ("e2", "bridgeL"),
             ("bridgeL", "bridgeR"),
             ("bridgeR", "t1"), ("bridgeR", "t2"), ("t1", "t2")]
        )
        assignment = mono_assignment(net)
        ranking = criticality_ranking(
            net, assignment, flat_model(0.5), entry="e1", target="t1"
        )
        assert ranking[0][0] == ("bridgeL", "bridgeR")
        assert ranking[0][1] > 0

    def test_reductions_nonnegative_on_chain(self, chain):
        net, assignment = chain
        ranking = criticality_ranking(
            net, assignment, flat_model(0.5), entry="h0", target="h3"
        )
        assert all(reduction >= -1e-12 for _, reduction in ranking)
        assert len(ranking) == net.edge_count()

    def test_top_truncates(self, chain):
        net, assignment = chain
        ranking = criticality_ranking(
            net, assignment, flat_model(0.5), entry="h0", target="h3", top=2
        )
        assert len(ranking) == 2

    def test_irrelevant_link_scores_zero(self):
        net = Network()
        for name in ("a", "b", "c", "d"):
            net.add_host(name, {"svc": ["x"]})
        net.add_links([("a", "b"), ("c", "d"), ("b", "c")])
        assignment = mono_assignment(net)
        ranking = dict(
            criticality_ranking(net, assignment, flat_model(0.5), "a", "b")
        )
        assert ranking[("c", "d")] == pytest.approx(0.0)
