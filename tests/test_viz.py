"""Tests for DOT/ASCII visualisation (repro.viz)."""

import pytest

from repro.core import diversify, mono_assignment
from repro.network.assignment import ProductAssignment
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable
from repro.viz import ascii_summary, to_dot


@pytest.fixture
def setting():
    net = chain_network(3, services={"svc": ["x", "y"]})
    assignment = ProductAssignment(
        net, {("h0", "svc"): "x", ("h1", "svc"): "x", ("h2", "svc"): "y"}
    )
    table = SimilarityTable(pairs={("x", "y"): 0.4})
    return net, assignment, table


class TestDot:
    def test_bare_network(self, setting):
        net, _, _ = setting
        dot = to_dot(net)
        assert dot.startswith("graph")
        assert dot.rstrip().endswith("}")
        for host in net.hosts:
            assert f'"{host}"' in dot
        assert '"h0" -- "h1"' in dot

    def test_assignment_labels(self, setting):
        net, assignment, _ = setting
        dot = to_dot(net, assignment)
        assert "h0\\nx" in dot
        assert "h2\\ny" in dot

    def test_edge_heat_colours(self, setting):
        net, assignment, table = setting
        dot = to_dot(net, assignment, table)
        # h0-h1 is a mono edge (sim 1.0 → red); h1-h2 sim 0.4.
        assert 'tooltip="similarity 1.000"' in dot
        assert 'tooltip="similarity 0.400"' in dot
        assert "#ff" in dot  # red component maxed on the mono edge

    def test_zone_clusters(self, setting):
        net, _, _ = setting
        dot = to_dot(net, zones={"left": ["h0", "h1"], "right": ["h2"]})
        assert "subgraph cluster_0" in dot
        assert 'label="left"' in dot

    def test_title_escaped(self, setting):
        net, _, _ = setting
        dot = to_dot(net, title='say "hi"')
        assert '\\"hi\\"' in dot

    def test_case_study_renders(self):
        from repro.casestudy.stuxnet import ZONES, stuxnet_case_study

        case = stuxnet_case_study()
        result = diversify(case.network, case.similarity)
        dot = to_dot(case.network, result.assignment, case.similarity, zones=ZONES)
        assert dot.count("subgraph") == len(ZONES)
        assert dot.count("--") == case.network.edge_count()


class TestAsciiSummary:
    def test_basic_stats(self, setting):
        net, _, _ = setting
        text = ascii_summary(net)
        assert "3 hosts" in text and "2 links" in text
        assert "degree" in text

    def test_top_edges_ranked(self, setting):
        net, assignment, table = setting
        text = ascii_summary(net, assignment, table, top_edges=2)
        lines = text.splitlines()
        assert "h0 -- h1: mean similarity 1.000" in text
        first = next(i for i, l in enumerate(lines) if "h0 -- h1" in l)
        second = next(i for i, l in enumerate(lines) if "h1 -- h2" in l)
        assert first < second  # most similar edge listed first

    def test_mono_network_flags_everything(self):
        net = chain_network(4)
        text = ascii_summary(net, mono_assignment(net), SimilarityTable())
        assert text.count("1.000") == 3
