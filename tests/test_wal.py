"""Unit tests for the write-ahead log and the fault-injection harness:
record round-trips, rotation, torn-tail and corruption handling,
compaction, fsync policies, fault plans, and the ``repro wal`` CLI."""

import os
import struct

import pytest

from repro.cli import build_parser, main
from repro.service import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    InjectedFault,
    WriteAheadLog,
    inspect_wal,
    parse_fault_plan,
    random_fault_plan,
    replay_wal,
    truncate_torn_tail,
)
from repro.stream.events import HostLeave, LinkAdd, LinkRemove, event_to_dict


def events(n, prefix="h"):
    return [LinkAdd(f"{prefix}{i}", f"{prefix}{i + 1}") for i in range(n)]


def segment_paths(root):
    return sorted(p for p in os.listdir(root) if p.endswith(".log"))


class TestAppendReplay:
    def test_round_trip_preserves_events_and_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        batch = [LinkAdd("h0", "h1"), LinkRemove("h1", "h2"), HostLeave("h3")]
        assert wal.append(batch) == (1, 3)
        assert wal.append([LinkAdd("h4", "h5")]) == (4, 4)
        wal.close()
        replayed = list(replay_wal(tmp_path))
        assert [seq for seq, _ in replayed] == [1, 2, 3, 4]
        assert [event_to_dict(e) for _, e in replayed[:3]] == [
            event_to_dict(e) for e in batch
        ]

    def test_replay_after_seq_skips_prefix(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(5))
        wal.close()
        assert [seq for seq, _ in replay_wal(tmp_path, after_seq=3)] == [4, 5]

    def test_empty_append_is_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        with pytest.raises(ValueError, match="at least one"):
            wal.append([])
        assert wal.last_seq == 0
        wal.close()
        assert list(replay_wal(tmp_path)) == []

    def test_last_seq_tracks_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        assert wal.last_seq == 0
        wal.append(events(3))
        assert wal.last_seq == 3
        wal.close()


class TestRotation:
    def test_record_bound_rotates_with_continuous_seqs(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=2)
        for _ in range(3):
            wal.append(events(2))
        wal.close()
        assert len(segment_paths(tmp_path)) >= 3
        assert [seq for seq, _ in replay_wal(tmp_path)] == list(range(1, 7))

    def test_byte_bound_rotates(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_bytes=64)
        for _ in range(4):
            wal.append(events(1))
        wal.close()
        assert len(segment_paths(tmp_path)) >= 3
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3, 4]

    def test_reopen_continues_after_last_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(3))
        wal.close()
        wal = WriteAheadLog(tmp_path)
        assert wal.last_seq == 3
        assert wal.append(events(1)) == (4, 4)
        wal.close()
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3, 4]


class TestCorruption:
    def _truncate_tail(self, tmp_path, drop):
        last = tmp_path / segment_paths(tmp_path)[-1]
        size = last.stat().st_size
        with open(last, "r+b") as fh:
            fh.truncate(size - drop)

    def test_torn_tail_drops_only_the_torn_record(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(4))
        wal.close()
        self._truncate_tail(tmp_path, 3)
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3]

    def test_crc_mismatch_ends_the_log(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(4))
        wal.close()
        last = tmp_path / segment_paths(tmp_path)[-1]
        blob = bytearray(last.read_bytes())
        blob[-2] ^= 0xFF  # flip a payload byte of the final record
        last.write_bytes(bytes(blob))
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3]

    def test_recovery_truncates_then_appends_cleanly(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(3))
        wal.close()
        self._truncate_tail(tmp_path, 2)
        wal = WriteAheadLog(tmp_path)
        assert wal.last_seq == 2
        assert wal.append(events(1)) == (3, 3)
        wal.close()
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3]

    def test_truncate_torn_tail_repairs_in_place(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(3))
        wal.close()
        assert truncate_torn_tail(tmp_path) == []
        self._truncate_tail(tmp_path, 1)
        actions = truncate_torn_tail(tmp_path)
        assert [a["action"] for a in actions] == ["truncated"]
        assert truncate_torn_tail(tmp_path) == []
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2]

    def test_torn_record_orphans_later_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=2)
        wal.append(events(2))
        wal.append(events(2))
        wal.close()
        first = tmp_path / segment_paths(tmp_path)[0]
        with open(first, "r+b") as fh:
            fh.truncate(first.stat().st_size - 1)
        # seq 2 is torn, so seqs 3-4 in the next segment are unreachable.
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1]
        actions = truncate_torn_tail(tmp_path)
        assert "unlinked" in {a["action"] for a in actions}

    def test_oversized_length_header_is_corruption_not_allocation(
        self, tmp_path
    ):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(1))
        wal.close()
        last = tmp_path / segment_paths(tmp_path)[-1]
        with open(last, "ab") as fh:
            fh.write(struct.pack("<QII", 2, 1 << 30, 0))
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1]

    def test_non_monotonic_seq_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=1)
        wal.append(events(1))
        wal.append(events(1))
        wal.close()
        paths = segment_paths(tmp_path)
        # swap the two segments' names so seqs run 2, 1
        a, b = (tmp_path / paths[0]), (tmp_path / paths[1])
        tmp = tmp_path / "swap"
        a.rename(tmp)
        b.rename(a)
        tmp.rename(b)
        with pytest.raises(ValueError, match="monotonic|order"):
            list(replay_wal(tmp_path))


class TestCompaction:
    def test_compact_prunes_fully_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=2)
        for _ in range(3):
            wal.append(events(2))
        removed = wal.compact(4)
        assert len(removed) == 2
        assert [seq for seq, _ in replay_wal(tmp_path)] == [5, 6]
        wal.close()

    def test_compact_never_removes_the_active_segment(self, tmp_path):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(4))
        assert wal.compact(4) == []
        assert wal.segment_count == 1
        assert wal.append(events(1)) == (5, 5)
        wal.close()

    def test_replay_after_compaction_resumes_from_snapshot_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path, segment_records=2)
        for _ in range(4):
            wal.append(events(2))
        wal.compact(6)
        assert [seq for seq, _ in replay_wal(tmp_path, after_seq=6)] == [7, 8]
        wal.close()


class TestFsyncPolicies:
    def test_invalid_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            WriteAheadLog(tmp_path, fsync="sometimes")

    def test_always_fsyncs_every_append(self, tmp_path, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd) or real(fd))
        wal = WriteAheadLog(tmp_path, fsync="always")
        base = len(calls)
        wal.append(events(1))
        wal.append(events(1))
        assert len(calls) - base == 2
        wal.close()

    def test_batch_fsyncs_only_on_sync(self, tmp_path, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd) or real(fd))
        wal = WriteAheadLog(tmp_path, fsync="batch")
        base = len(calls)
        wal.append(events(2))
        assert len(calls) == base
        wal.sync()
        assert len(calls) == base + 1
        wal.close()

    def test_off_never_fsyncs(self, tmp_path, monkeypatch):
        calls = []
        monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(events(2))
        wal.sync()
        wal.close()
        assert calls == []

    def test_unsynced_appends_survive_abandon(self, tmp_path):
        # buffering=0 writes reach the OS immediately; abandon() skips the
        # final fsync (simulating SIGKILL) yet the records must replay.
        wal = WriteAheadLog(tmp_path, fsync="off")
        wal.append(events(3))
        wal.abandon()
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2, 3]


class TestFaultPlans:
    def test_parse_spec_round_trip(self):
        plan = parse_fault_plan("wal.append:crash:3,solve:error:1:2")
        assert isinstance(plan, FaultPlan)
        assert len(plan.rules) == 2
        assert plan.rules[0] == FaultRule("wal.append", "crash", after=3)
        assert plan.rules[1] == FaultRule("solve", "error", after=1, count=2)

    def test_parse_rejects_unknown_point_and_action(self):
        with pytest.raises(ValueError):
            parse_fault_plan("tea.break:error")
        with pytest.raises(ValueError):
            parse_fault_plan("wal.append:maybe")

    def test_rule_fires_in_window_only(self):
        plan = FaultPlan([FaultRule("solve", "error", after=2, count=2)])
        assert [plan.fire("solve") for _ in range(5)] == [
            None, "error", "error", None, None,
        ]

    def test_count_zero_fires_forever(self):
        plan = FaultPlan([FaultRule("solve", "error", after=1, count=0)])
        assert all(plan.fire("solve") == "error" for _ in range(4))

    def test_random_plan_is_deterministic(self):
        assert repr(random_fault_plan(11, 50)) == repr(random_fault_plan(11, 50))

    def test_append_error_rolls_back_cleanly(self, tmp_path):
        plan = parse_fault_plan("wal.append:error:2")
        wal = WriteAheadLog(tmp_path, faults=plan)
        wal.append(events(1))
        with pytest.raises(InjectedFault):
            wal.append(events(2))
        assert wal.last_seq == 1
        assert wal.append(events(1)) == (2, 2)
        wal.close()
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2]

    def test_fsync_error_under_always_keeps_log_consistent(self, tmp_path):
        plan = parse_fault_plan("wal.fsync:error:1")
        wal = WriteAheadLog(tmp_path, fsync="always", faults=plan)
        with pytest.raises(InjectedFault):
            wal.append(events(1))
        assert wal.last_seq == 0  # unacknowledged record rolled back
        assert wal.append(events(1)) == (1, 1)
        wal.close()
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1]

    def test_torn_write_recovers_on_reopen(self, tmp_path):
        plan = parse_fault_plan("wal.append:torn:2")
        wal = WriteAheadLog(tmp_path, fsync="off", faults=plan)
        wal.append(events(1))
        with pytest.raises(InjectedCrash):
            wal.append(events(1))
        wal.abandon()
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1]
        wal = WriteAheadLog(tmp_path)
        assert wal.last_seq == 1
        assert wal.append(events(1)) == (2, 2)
        wal.close()

    def test_crash_action_raises_base_exception(self, tmp_path):
        plan = parse_fault_plan("wal.append:crash:1")
        wal = WriteAheadLog(tmp_path, fsync="off", faults=plan)
        caught = None
        try:
            wal.append(events(1))
        except Exception:  # noqa: BLE001 - the point: Exception won't catch it
            caught = "exception"
        except InjectedCrash:
            caught = "crash"
        assert caught == "crash"
        wal.abandon()
        # the record was written (then "crashed"), so it replays
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1]


class TestWalCli:
    def _write_log(self, tmp_path, count=3):
        wal = WriteAheadLog(tmp_path)
        wal.append(events(count))
        wal.close()

    def test_parser_accepts_wal_actions(self):
        parser = build_parser()
        for action in ("inspect", "replay", "truncate"):
            args = parser.parse_args(["wal", action, "/tmp/x"])
            assert args.wal_action == action

    def test_serve_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--wal", "/tmp/w", "--fsync", "always",
             "--fault-plan", "solve:error:5"]
        )
        assert args.wal == "/tmp/w"
        assert args.fsync == "always"
        assert args.fault_plan == "solve:error:5"

    def test_inspect_lists_segments(self, tmp_path, capsys):
        self._write_log(tmp_path)
        assert main(["wal", "inspect", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wal-000000000001.log" in out
        assert "ok" in out

    def test_inspect_empty_dir(self, tmp_path, capsys):
        assert main(["wal", "inspect", str(tmp_path)]) == 0
        assert "no WAL segments" in capsys.readouterr().out

    def test_truncate_reports_clean_log(self, tmp_path, capsys):
        self._write_log(tmp_path)
        assert main(["wal", "truncate", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_truncate_repairs_torn_tail(self, tmp_path, capsys):
        self._write_log(tmp_path)
        last = tmp_path / segment_paths(tmp_path)[-1]
        with open(last, "r+b") as fh:
            fh.truncate(last.stat().st_size - 1)
        assert main(["wal", "truncate", str(tmp_path)]) == 0
        assert "truncated" in capsys.readouterr().out
        assert [seq for seq, _ in replay_wal(tmp_path)] == [1, 2]

    def test_replay_reports_final_energy(self, tmp_path, capsys):
        from repro.network.generator import (
            RandomNetworkConfig,
            random_network,
        )
        from repro.stream import ChurnConfig, random_churn_trace

        generator = RandomNetworkConfig(
            hosts=12, degree=2, services=2, products_per_service=3, seed=4
        )
        trace = random_churn_trace(
            random_network(generator), ChurnConfig(events=4, seed=4)
        )
        wal = WriteAheadLog(tmp_path)
        wal.append(trace)
        wal.close()
        assert main(
            ["wal", "replay", str(tmp_path), "--hosts", "12", "--degree", "2",
             "--services", "2", "--products", "3", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "replayed 4 event(s)" in out
        assert "final energy" in out


class TestWalReplaySnapshotCli:
    """``repro wal replay --snapshot-dir``: snapshot + log-tail offline."""

    def _workload(self, tmp_path, events=6, anchor=4):
        from repro.network.generator import (
            RandomNetworkConfig,
            random_network,
            random_similarity,
        )
        from repro.service import save_snapshot
        from repro.stream import (
            ChurnConfig,
            DynamicDiversifier,
            random_churn_trace,
        )

        generator = RandomNetworkConfig(
            hosts=12, degree=2, services=2, products_per_service=3, seed=4
        )
        net, table = random_network(generator), random_similarity(generator)
        trace = random_churn_trace(net, ChurnConfig(events=events, seed=4))
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append(trace)
        wal.close()
        engine = DynamicDiversifier(net.copy(), table.copy(), solver="trws")
        for event in trace[:anchor]:
            engine.apply(event)
        engine.solve()
        save_snapshot(
            engine, tmp_path / "snaps", version=1, wal_seq=anchor
        )
        return trace

    def test_replay_resumes_from_snapshot(self, tmp_path, capsys):
        self._workload(tmp_path, events=6, anchor=4)
        assert main(
            ["wal", "replay", str(tmp_path / "wal"),
             "--snapshot-dir", str(tmp_path / "snaps")]
        ) == 0
        out = capsys.readouterr().out
        assert "restored snap-" in out
        assert "(wal_seq 4)" in out
        # only the tail after the anchor replays
        assert "replayed 2 event(s) after seq 4" in out
        assert "final energy" in out

    def test_replay_skips_missing_snapshot(self, tmp_path, capsys):
        self._workload(tmp_path, events=5, anchor=2)
        empty = tmp_path / "nothing"
        empty.mkdir()
        assert main(
            ["wal", "replay", str(tmp_path / "wal"),
             "--snapshot-dir", str(empty),
             "--hosts", "12", "--degree", "2", "--services", "2",
             "--products", "3", "--seed", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "no valid snapshot" in out
        assert "replayed 5 event(s) after seq 0" in out

    def test_snapshot_and_full_replay_agree(self, tmp_path, capsys):
        self._workload(tmp_path, events=6, anchor=3)
        assert main(
            ["wal", "replay", str(tmp_path / "wal"),
             "--snapshot-dir", str(tmp_path / "snaps")]
        ) == 0
        from_snapshot = capsys.readouterr().out.splitlines()[-1]
        assert main(
            ["wal", "replay", str(tmp_path / "wal"),
             "--hosts", "12", "--degree", "2", "--services", "2",
             "--products", "3", "--seed", "4"]
        ) == 0
        from_scratch = capsys.readouterr().out.splitlines()[-1]
        # both paths end on the same "final energy ... over N hosts" line
        assert from_snapshot == from_scratch
