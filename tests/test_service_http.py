"""Live-daemon tests: HTTP ingestion parity with offline replay, snapshot
restarts, backpressure, read consistency during solves, graceful drain."""

import asyncio
import contextlib
import threading

import pytest

from repro.cli import build_parser
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.service import (
    Backpressure,
    DiversificationService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
)
from repro.stream import ChurnConfig, random_churn_trace, replay_trace


def workload(hosts=30, degree=2, services=2, pps=4, seed=0):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        products_per_service=pps, similarity_density=0.3, seed=seed,
    )
    return random_network(config), random_similarity(config)


@contextlib.contextmanager
def running_service(network, similarity, config=None, service=None):
    """Run a DiversificationService on a daemon thread; yield its client."""
    if service is None:
        service = DiversificationService(
            network.copy(), similarity.copy(),
            config=config or ServiceConfig(port=0),
        )
    started = threading.Event()
    failure = []

    async def runner():
        await service.start()
        started.set()
        await service._stopped.wait()

    def boot():
        try:
            asyncio.run(runner())
        except Exception as problem:  # pragma: no cover - surfaced below
            failure.append(problem)
            started.set()

    thread = threading.Thread(target=boot, daemon=True)
    thread.start()
    assert started.wait(timeout=60), "service did not start"
    if failure:
        raise failure[0]
    client = ServiceClient(port=service.port, timeout=60)
    try:
        yield client, service
    finally:
        with contextlib.suppress(Exception):
            client.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive(), "service did not stop"


class TestIngestionParity:
    def test_http_trace_matches_offline_replay(self):
        network, similarity = workload(seed=1)
        trace = random_churn_trace(
            network, ChurnConfig(events=10, seed=1, constraint_weight=0.3)
        )
        report = replay_trace(network.copy(), similarity.copy(), trace)
        offline = report.records[-1].energy

        config = ServiceConfig(port=0, batch_max=1)
        with running_service(network, similarity, config) as (client, _):
            assert client.send(trace, chunk=3) == len(trace)
            client.wait_idle()
            payload = client.assignment()
            assert payload["energy"] == pytest.approx(offline, abs=1e-12)
            assert payload["version"] == len(trace) + 1  # boot solve + 1/event
            assert payload["events_applied"] == len(trace)

    def test_batched_ingestion_reaches_consistent_state(self):
        # Batching solves fewer times; the energy it lands on must still be
        # the energy of its own final assignment (snapshot self-consistency).
        network, similarity = workload(seed=2)
        trace = random_churn_trace(network, ChurnConfig(events=12, seed=2))
        config = ServiceConfig(port=0, batch_max=8)
        with running_service(network, similarity, config) as (client, service):
            client.send(trace)
            client.wait_idle()
            payload = client.assignment()
            assert payload["version"] < len(trace) + 1
            whatif = client.what_if({})
            assert whatif["delta"] == pytest.approx(0.0, abs=1e-9)
            assert service._events_applied == len(trace)


class TestReads:
    def test_host_view_and_404(self):
        network, similarity = workload(seed=3)
        with running_service(network, similarity) as (client, _):
            view = client.host_view("h0")
            assert view["host"] == "h0"
            for service_name, entry in view["services"].items():
                assert entry["assigned"] in entry["candidates"]
            with pytest.raises(ServiceError) as caught:
                client.host_view("h999")
            assert caught.value.status == 404

    def test_what_if_reports_override_delta(self):
        network, similarity = workload(seed=4)
        with running_service(network, similarity) as (client, _):
            payload = client.assignment()
            host = sorted(payload["assignment"])[0]
            service_name = sorted(payload["assignment"][host])[0]
            current = payload["assignment"][host][service_name]
            candidates = client.host_view(host)["services"][service_name][
                "candidates"
            ]
            other = next(c for c in candidates if c != current)
            whatif = client.what_if({host: {service_name: other}})
            assert whatif["changed"] == 1
            assert whatif["baseline_energy"] == pytest.approx(payload["energy"])
            # the solver picked `current`, so overriding can't improve E(N)
            assert whatif["delta"] >= -1e-9

    def test_what_if_rejects_unknown_names(self):
        network, similarity = workload(seed=4)
        with running_service(network, similarity) as (client, _):
            with pytest.raises(ServiceError) as caught:
                client.what_if({"nope": {"svc": "p"}})
            assert caught.value.status == 400

    def test_reads_stay_consistent_while_writer_churns(self):
        network, similarity = workload(hosts=40, seed=5)
        trace = random_churn_trace(
            network, ChurnConfig(events=20, seed=5, constraint_weight=0.3)
        )
        config = ServiceConfig(port=0, batch_max=1, high_water=10_000)
        with running_service(network, similarity, config) as (client, _):
            client.post_events(trace)
            versions = []
            # hammer reads while the writer drains the queue; every view must
            # be self-consistent: re-evaluating its own assignment on its own
            # network copy reproduces its own energy exactly.
            while True:
                whatif = client.what_if({})
                assert whatif["delta"] == pytest.approx(0.0, abs=1e-9)
                versions.append(whatif["version"])
                if client.healthz()["idle"]:
                    break
            assert versions == sorted(versions)  # monotone, no time travel
            final = client.what_if({})
            assert final["version"] == len(trace) + 1
            assert final["delta"] == pytest.approx(0.0, abs=1e-9)


class TestBackpressure:
    def test_429_past_high_water_then_recovery(self):
        network, similarity = workload(seed=6)
        trace = random_churn_trace(network, ChurnConfig(events=25, seed=6))
        config = ServiceConfig(
            port=0, batch_max=1, high_water=4, retry_after=0.05
        )
        with running_service(network, similarity, config) as (client, _):
            with pytest.raises(Backpressure) as caught:
                client.post_events(trace)
            assert caught.value.retry_after == pytest.approx(0.05)
            # honouring Retry-After drains the whole trace eventually
            assert client.send(trace, chunk=4) == len(trace)
            client.wait_idle()
            assert client.assignment()["events_applied"] == len(trace)

    def test_rejected_events_are_counted(self):
        network, similarity = workload(seed=6)
        trace = random_churn_trace(network, ChurnConfig(events=25, seed=6))
        config = ServiceConfig(port=0, high_water=4, retry_after=0.05)
        with running_service(network, similarity, config) as (client, _):
            with pytest.raises(Backpressure):
                client.post_events(trace)
            assert "repro_events_rejected_total 25" in client.metrics_text()


class TestValidation:
    def test_bad_event_is_400_and_nothing_queues(self):
        network, similarity = workload(seed=7)
        with running_service(network, similarity) as (client, service):
            with pytest.raises(ServiceError) as caught:
                client.post_events(
                    [{"type": "link_add", "a": "h0", "b": "h1"},
                     {"type": "reboot"}]
                )
            assert caught.value.status == 400
            assert service._queue.qsize() == 0

    def test_unroutable_path_is_404(self):
        network, similarity = workload(seed=7)
        with running_service(network, similarity) as (client, _):
            with pytest.raises(ServiceError) as caught:
                client._json("GET", "/bogus")
            assert caught.value.status == 404

    def test_inapplicable_event_fails_alone(self):
        # removing a link that does not exist fails that event only
        network, similarity = workload(seed=7)
        config = ServiceConfig(port=0, batch_max=8)
        with running_service(network, similarity, config) as (client, _):
            client.post_events(
                [{"type": "link_remove", "a": "h0", "b": "h0"},
                 {"type": "similarity", "product_a": "s0_p0",
                  "product_b": "s0_p1", "value": 0.9}]
            )
            client.wait_idle()
            text = client.metrics_text()
            assert "repro_events_failed_total 1" in text
            assert "repro_events_applied_total 1" in text


class TestMetricsEndpoint:
    def test_prometheus_exposition(self):
        network, similarity = workload(seed=8)
        with running_service(network, similarity) as (client, _):
            client.assignment()
            text = client.metrics_text()
            assert "# TYPE repro_solves_total counter" in text
            assert "repro_solves_total 1" in text
            assert 'repro_solve_seconds_bucket{le="+Inf"} 1' in text
            assert "repro_reads_total" in text
            assert "# TYPE repro_queue_depth gauge" in text


class TestSnapshotsOverHttp:
    def test_restart_resumes_with_parity(self, tmp_path):
        network, similarity = workload(seed=9)
        trace = random_churn_trace(
            network, ChurnConfig(events=8, seed=9, constraint_weight=0.3)
        )
        follow_up = random_churn_trace(
            network, ChurnConfig(events=4, seed=90)
        )
        report = replay_trace(
            network.copy(), similarity.copy(), list(trace) + list(follow_up)
        )
        offline = report.records[-1].energy

        config = ServiceConfig(port=0, batch_max=1, snapshot_dir=tmp_path)
        with running_service(network, similarity, config) as (client, _):
            client.send(trace)
            client.wait_idle()
        # graceful shutdown wrote a snapshot; restart from it
        restarted = DiversificationService.from_snapshot(
            ServiceConfig(port=0, batch_max=1, snapshot_dir=tmp_path)
        )
        with running_service(None, None, service=restarted) as (client, _):
            health = client.healthz()
            assert health["events_applied"] == len(trace)
            client.send(follow_up)
            client.wait_idle()
            payload = client.assignment()
            assert payload["energy"] == pytest.approx(offline, abs=1e-12)
            assert payload["events_applied"] == len(trace) + len(follow_up)

    def test_snapshot_endpoint_and_retention(self, tmp_path):
        network, similarity = workload(seed=10)
        config = ServiceConfig(
            port=0, batch_max=1, snapshot_dir=tmp_path,
            snapshot_every=1, keep_snapshots=2,
        )
        trace = random_churn_trace(network, ChurnConfig(events=5, seed=10))
        with running_service(network, similarity, config) as (client, _):
            forced = client.snapshot()
            assert forced["snapshot"] is not None
            client.send(trace)
            client.wait_idle()
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len(names) == 2  # retention pruned the rest
        assert names[-1] == "snap-00000006"  # boot solve + 5 events

    def test_snapshot_endpoint_409_when_disabled(self):
        network, similarity = workload(seed=10)
        with running_service(network, similarity) as (client, _):
            with pytest.raises(ServiceError) as caught:
                client.snapshot()
            assert caught.value.status == 409


class TestGracefulShutdown:
    def test_drain_applies_every_acknowledged_event(self):
        network, similarity = workload(seed=11)
        trace = random_churn_trace(network, ChurnConfig(events=15, seed=11))
        config = ServiceConfig(port=0, batch_max=1, high_water=10_000)
        with running_service(network, similarity, config) as (client, service):
            client.post_events(trace)       # acknowledged: all queued
            client.shutdown()               # drain starts immediately
        # running_service joined the thread: the drain has fully finished
        assert service._events_applied == len(trace)

    def test_events_refused_while_draining(self):
        network, similarity = workload(seed=11)
        trace = random_churn_trace(
            network, ChurnConfig(events=40, seed=11)
        )
        config = ServiceConfig(port=0, batch_max=1, high_water=10_000)
        with running_service(network, similarity, config) as (client, _):
            client.post_events(trace)
            client.shutdown()   # draining is set before the 202 goes out
            with pytest.raises(ServiceError) as caught:
                client.post_events(trace[:1])
            assert caught.value.status == 503


class TestCliWiring:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8351
        assert args.batch_max == 64
        assert args.high_water == 1024
        assert not args.restore

    def test_serve_parser_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--sharded", "--snapshot-dir", "/tmp/x",
             "--snapshot-every", "5", "--restore"]
        )
        assert args.port == 0
        assert args.sharded
        assert args.snapshot_every == 5
        assert args.restore


class TestObservability:
    def test_debug_trace_409_when_disabled(self):
        network, similarity = workload(seed=8)
        with running_service(network, similarity) as (client, _):
            with pytest.raises(ServiceError) as failure:
                client.debug_trace()
            assert failure.value.status == 409

    def test_debug_trace_serves_chrome_tail(self):
        network, similarity = workload(seed=8)
        trace_events = random_churn_trace(
            network, ChurnConfig(events=6, seed=8)
        )
        config = ServiceConfig(port=0, batch_max=2, trace_tail=2048)
        with running_service(network, similarity, config) as (client, service):
            client.send(trace_events)
            client.wait_idle()
            payload = client.debug_trace()
            assert payload["displayTimeUnit"] == "ms"
            names = {event["name"] for event in payload["traceEvents"]}
            assert "service.batch" in names
            assert "stream.solve" in names
        # Shutdown releases the process-global trace the service owned.
        from repro import obs

        assert obs.current_trace() is None

    def test_metrics_cover_build_info_and_escalations(self):
        network, similarity = workload(seed=9)
        config = ServiceConfig(port=0, solve_buckets=(0.05, 0.5, 5.0))
        with running_service(network, similarity, config) as (client, _):
            client.wait_idle()
            text = client.metrics_text()
            assert 'repro_build_info{' in text
            assert 'solver="trws"' in text
            # The boot solve is a cold first solve — counted by reason.
            assert 'repro_escalations_total{reason="first_solve"} 1' in text
            # Custom buckets replace the defaults in both histograms.
            assert 'repro_solve_seconds_bucket{le="0.05"}' in text
            assert 'repro_solve_seconds_bucket{le="0.001"}' not in text
            assert 'repro_shard_solve_seconds_bucket{le="+Inf"}' in text

    def test_sharded_service_populates_shard_histogram(self):
        network, similarity = workload(seed=10)
        trace_events = random_churn_trace(
            network, ChurnConfig(events=4, seed=10)
        )
        config = ServiceConfig(port=0, sharded=True, batch_max=1)
        with running_service(network, similarity, config) as (client, _):
            client.send(trace_events)
            client.wait_idle()
            text = client.metrics_text()
            count = [
                line for line in text.splitlines()
                if line.startswith("repro_shard_solve_seconds_count")
            ]
            assert count and int(count[0].split()[-1]) > 0

    def test_config_validation(self):
        with pytest.raises(ValueError, match="log_level"):
            ServiceConfig(port=0, log_level="chatty")
        with pytest.raises(ValueError, match="trace_tail"):
            ServiceConfig(port=0, trace_tail=-1)
        with pytest.raises(ValueError, match="ascending"):
            ServiceConfig(port=0, solve_buckets=(0.5, 0.1))
        with pytest.raises(ValueError, match="positive"):
            ServiceConfig(port=0, solve_buckets=(0.0, 1.0))

    def test_serve_parser_observability_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--log-level", "debug",
             "--trace-tail", "4096", "--solve-buckets", "0.01,0.1,1"]
        )
        assert args.log_level == "debug"
        assert args.trace_tail == 4096
        assert args.solve_buckets == (0.01, 0.1, 1.0)

    def test_trace_parser_defaults(self):
        args = build_parser().parse_args(["trace", "stream"])
        assert args.workload == "stream"
        assert args.out == "repro-trace.json"
        assert not args.monolithic


class TestClientResilience:
    def test_malformed_retry_after_falls_back_to_default(self):
        client = ServiceClient(port=1, default_retry_after=0.25)
        for bad in ("soon", "", None, "-3"):
            headers = {} if bad is None else {"Retry-After": bad}
            client._request = lambda *a, **k: (
                429, headers, b'{"error": "busy"}'
            )
            with pytest.raises(Backpressure) as caught:
                client._json("POST", "/events", {})
            assert caught.value.retry_after == 0.25

    def test_valid_retry_after_is_honoured(self):
        client = ServiceClient(port=1, default_retry_after=0.25)
        client._request = lambda *a, **k: (
            429, {"Retry-After": "1.5"}, b'{"error": "busy"}'
        )
        with pytest.raises(Backpressure) as caught:
            client._json("GET", "/healthz")
        assert caught.value.retry_after == 1.5

    def test_transient_errors_retry_then_succeed(self, monkeypatch):
        naps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: naps.append(s)
        )
        client = ServiceClient(port=1, retries=3, backoff=0.05)
        attempts = []

        def flaky(method, path, payload=None):
            attempts.append(path)
            if len(attempts) < 3:
                raise ConnectionRefusedError("not up yet")
            return 200, {}, b'{"ok": true}'

        client._request_once = flaky
        assert client._json("GET", "/healthz") == {"ok": True}
        assert len(attempts) == 3
        assert len(naps) == 2
        assert naps[1] > naps[0] * 0.5  # backoff grows (modulo jitter)

    def test_transient_errors_exhaust_and_raise(self, monkeypatch):
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: None
        )
        client = ServiceClient(port=1, retries=2)

        def dead(method, path, payload=None):
            raise ConnectionResetError("gone")

        client._request_once = dead
        with pytest.raises(ConnectionResetError):
            client._json("GET", "/healthz")

    def test_http_error_statuses_are_not_retried(self):
        client = ServiceClient(port=1, retries=3)
        calls = []

        def server_error(method, path, payload=None):
            calls.append(1)
            return 500, {}, b'{"error": "boom"}'

        client._request_once = server_error
        with pytest.raises(ServiceError):
            client._json("GET", "/healthz")
        assert len(calls) == 1


class TestIdempotentResend:
    def test_duplicate_request_id_applies_once(self):
        network, similarity = workload(seed=11)
        trace_events = random_churn_trace(
            network, ChurnConfig(events=4, seed=11)
        )
        config = ServiceConfig(port=0, batch_max=1)
        with running_service(network, similarity, config) as (client, _):
            first = client.post_events(trace_events[:2], request_id="req-1")
            dup = client.post_events(trace_events[:2], request_id="req-1")
            client.wait_idle()
            payload = client.assignment()
        assert first.get("duplicate") is None
        assert dup["duplicate"] is True
        assert dup["request_id"] == "req-1"
        assert payload["events_applied"] == 2  # not 4

    def test_fresh_request_ids_apply_independently(self):
        network, similarity = workload(seed=12)
        trace_events = random_churn_trace(
            network, ChurnConfig(events=4, seed=12)
        )
        config = ServiceConfig(port=0, batch_max=1)
        with running_service(network, similarity, config) as (client, _):
            client.post_events(trace_events[:2], request_id="req-a")
            client.post_events(trace_events[2:], request_id="req-b")
            client.wait_idle()
            payload = client.assignment()
        assert payload["events_applied"] == 4

    def test_bare_event_list_still_accepted(self):
        # The pre-envelope wire format (a raw JSON array) must keep working.
        network, similarity = workload(seed=13)
        trace_events = random_churn_trace(
            network, ChurnConfig(events=2, seed=13)
        )
        config = ServiceConfig(port=0, batch_max=1)
        with running_service(network, similarity, config) as (client, _):
            wire = ServiceClient.normalize_events(trace_events)
            response = client._json("POST", "/events", wire)
            client.wait_idle()
            payload = client.assignment()
        assert response["queued"] == 2
        assert payload["events_applied"] == 2

    def test_wal_config_validation(self):
        with pytest.raises(ValueError, match="fsync"):
            ServiceConfig(port=0, fsync="sometimes")
        with pytest.raises(ValueError, match="wal_segment_bytes"):
            ServiceConfig(port=0, wal_segment_bytes=0)
        with pytest.raises(ValueError, match="wal_segment_records"):
            ServiceConfig(port=0, wal_segment_records=0)
        config = ServiceConfig(port=0, wal_dir="/tmp/w", fsync="always")
        assert config.wal_enabled
        assert not ServiceConfig(port=0).wal_enabled
