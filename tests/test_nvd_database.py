"""Unit tests for the NVD-like store (repro.nvd.database)."""

import pytest

from repro.nvd.cpe import CPE
from repro.nvd.cve import CVERecord
from repro.nvd.database import VulnerabilityDatabase


def record(year, serial, *uris, cvss=5.0):
    return CVERecord.build(year, serial, [CPE.parse(u) for u in uris], cvss=cvss)


@pytest.fixture
def db():
    database = VulnerabilityDatabase()
    database.add(record(2014, 1, "cpe:/a:google:chrome:45.0"))
    database.add(record(2015, 2, "cpe:/a:google:chrome:50.0", "cpe:/a:mozilla:firefox"))
    database.add(record(2016, 3, "cpe:/a:mozilla:firefox:45.0"))
    return database


class TestCrud:
    def test_len_and_contains(self, db):
        assert len(db) == 3
        assert "CVE-2015-0002" in db
        assert "CVE-2000-0001" not in db

    def test_get(self, db):
        assert db.get("CVE-2014-0001").year == 2014

    def test_reinsert_replaces(self, db):
        db.add(record(2014, 1, "cpe:/a:apple:safari"))
        assert len(db) == 3
        assert not db.vulnerabilities_of(CPE.parse("cpe:/a:google:chrome:45.0"))
        assert db.vulnerabilities_of(CPE.parse("cpe:/a:apple:safari"))

    def test_remove(self, db):
        db.remove("CVE-2014-0001")
        assert len(db) == 2
        assert "CVE-2014-0001" not in db

    def test_remove_unknown_raises(self, db):
        with pytest.raises(KeyError):
            db.remove("CVE-1999-0001")

    def test_iteration_yields_records(self, db):
        assert {r.cve_id for r in db} == {
            "CVE-2014-0001",
            "CVE-2015-0002",
            "CVE-2016-0003",
        }


class TestQueries:
    def test_product_level_query(self, db):
        hits = db.vulnerabilities_of(CPE.parse("cpe:/a:google:chrome"))
        assert hits == {"CVE-2014-0001", "CVE-2015-0002"}

    def test_versioned_query(self, db):
        hits = db.vulnerabilities_of(CPE.parse("cpe:/a:google:chrome:50.0"))
        assert hits == {"CVE-2015-0002"}

    def test_year_bounds(self, db):
        chrome = CPE.parse("cpe:/a:google:chrome")
        assert db.vulnerabilities_of(chrome, since=2015) == {"CVE-2015-0002"}
        assert db.vulnerabilities_of(chrome, until=2014) == {"CVE-2014-0001"}
        assert not db.vulnerabilities_of(chrome, since=2016)

    def test_unknown_product_empty(self, db):
        assert db.vulnerabilities_of(CPE.parse("cpe:/a:x:y")) == frozenset()

    def test_products_listing(self, db):
        names = {f"{c.vendor}:{c.product}" for c in db.products()}
        assert names == {"google:chrome", "mozilla:firefox"}

    def test_records_for_year(self, db):
        assert [r.cve_id for r in db.records_for_year(2015)] == ["CVE-2015-0002"]


class TestSerialisation:
    def test_json_round_trip(self, db):
        clone = VulnerabilityDatabase.from_json(db.to_json())
        assert len(clone) == len(db)
        assert {r.cve_id for r in clone} == {r.cve_id for r in db}
        chrome = CPE.parse("cpe:/a:google:chrome")
        assert clone.vulnerabilities_of(chrome) == db.vulnerabilities_of(chrome)

    def test_json_preserves_cvss(self, db):
        db.add(record(2016, 9, "cpe:/a:x:y", cvss=9.8))
        clone = VulnerabilityDatabase.from_json(db.to_json())
        assert clone.get("CVE-2016-0009").cvss == 9.8
