"""Crash-recovery tests for the service tier: kill the daemon at seeded
fault points, restart from snapshot + WAL tail, and demand byte-identical
state versus a twin that never crashed.  Also covers the graceful
degradation ladder (forced cold rebuild -> dead letter), snapshot
corruption fallback, and acknowledged-write durability."""

import asyncio
import contextlib
import json
import threading

import pytest

from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.service import (
    DiversificationService,
    InjectedCrash,
    ServiceClient,
    ServiceConfig,
    parse_fault_plan,
)
from repro.service.snapshot import latest_valid_snapshot, load_snapshot
from repro.stream import ChurnConfig, random_churn_trace

PARITY_KEYS = ("assignment", "energy", "version", "events_applied")


def workload(hosts=24, seed=0):
    config = RandomNetworkConfig(
        hosts=hosts, degree=2, services=2,
        products_per_service=4, similarity_density=0.3, seed=seed,
    )
    return random_network(config), random_similarity(config)


@contextlib.contextmanager
def running_service(service, crash=False):
    """Run a service on a daemon thread; ``crash=True`` aborts instead of
    draining on exit — the in-process stand-in for SIGKILL."""
    started = threading.Event()
    failure = []
    box = {}

    async def runner():
        box["loop"] = asyncio.get_running_loop()
        await service.start()
        started.set()
        await service._stopped.wait()

    def boot():
        try:
            asyncio.run(runner())
        except Exception as problem:  # pragma: no cover - surfaced below
            failure.append(problem)
            started.set()

    thread = threading.Thread(target=boot, daemon=True)
    thread.start()
    assert started.wait(timeout=60), "service did not start"
    if failure:
        raise failure[0]
    client = ServiceClient(port=service.port, timeout=60)
    try:
        yield client, service
    finally:
        if crash:
            asyncio.run_coroutine_threadsafe(
                service.abort(), box["loop"]
            ).result(timeout=60)
        else:
            with contextlib.suppress(Exception):
                client.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive(), "service did not stop"


def run_to_completion(network, similarity, trace, chunk=3, **config_kw):
    """Feed the whole trace through a fresh service; return the final view."""
    config = ServiceConfig(port=0, batch_max=1, **config_kw)
    service = DiversificationService(
        network.copy(), similarity.copy(), config=config
    )
    with running_service(service) as (client, _):
        client.send(trace, chunk=chunk)
        client.wait_idle()
        return client.assignment()


def crash_after(network, similarity, trace, upto, chunk=3, **config_kw):
    """Ingest ``trace[:upto]``, snapshot on cadence, then die ungracefully."""
    config = ServiceConfig(port=0, batch_max=1, **config_kw)
    service = DiversificationService(
        network.copy(), similarity.copy(), config=config
    )
    with running_service(service, crash=True) as (client, _):
        client.send(trace[:upto], chunk=chunk)
        client.wait_idle()
        return client.assignment()


def metric_value(text, name):
    for line in text.splitlines():
        if line.split(" ")[0] == name:
            return float(line.rsplit(" ", 1)[1])
    return None


class TestCrashRecoveryParity:
    @pytest.mark.parametrize("kill_point", [2, 5, 9])
    def test_snapshot_plus_tail_matches_uncrashed_twin(
        self, tmp_path, kill_point
    ):
        network, similarity = workload(seed=10)
        trace = random_churn_trace(
            network, ChurnConfig(events=12, seed=10, constraint_weight=0.3)
        )
        twin = run_to_completion(network, similarity, trace)
        durable = dict(
            wal_dir=tmp_path / "wal",
            snapshot_dir=tmp_path / "snaps",
            snapshot_every=3,
            fsync="always",
        )
        pre = crash_after(network, similarity, trace, kill_point, **durable)
        restarted = DiversificationService.from_snapshot(
            ServiceConfig(port=0, batch_max=1, **durable)
        )
        with running_service(restarted) as (client, _):
            post = client.assignment()
            for key in PARITY_KEYS:
                assert post[key] == pre[key], key
            client.send(trace[kill_point:], chunk=3)
            client.wait_idle()
            final = client.assignment()
        for key in PARITY_KEYS:
            assert final[key] == twin[key], key

    def test_wal_only_recovery_replays_from_scratch(self, tmp_path):
        network, similarity = workload(seed=11)
        trace = random_churn_trace(network, ChurnConfig(events=8, seed=11))
        twin = run_to_completion(network, similarity, trace)
        crash_after(
            network, similarity, trace, len(trace),
            wal_dir=tmp_path, fsync="always",
        )
        restarted = DiversificationService(
            network.copy(), similarity.copy(),
            config=ServiceConfig(port=0, batch_max=1, wal_dir=tmp_path),
            recover=True,
        )
        with running_service(restarted) as (client, _):
            post = client.assignment()
        for key in PARITY_KEYS:
            assert post[key] == twin[key], key

    def test_sharded_recovery_matches_sharded_twin(self, tmp_path):
        network, similarity = workload(seed=12)
        trace = random_churn_trace(network, ChurnConfig(events=8, seed=12))
        durable = dict(
            wal_dir=tmp_path / "wal",
            snapshot_dir=tmp_path / "snaps",
            snapshot_every=4,
            fsync="always",
            sharded=True,
        )
        twin = run_to_completion(network, similarity, trace, sharded=True)
        pre = crash_after(network, similarity, trace, len(trace), **durable)
        restarted = DiversificationService.from_snapshot(
            ServiceConfig(port=0, batch_max=1, **durable)
        )
        with running_service(restarted) as (client, _):
            post = client.assignment()
        for key in PARITY_KEYS:
            assert post[key] == pre[key] == twin[key], key

    def test_seeded_crash_points_sweep(self, tmp_path):
        # Property-style: several seeds, each with a derived kill point;
        # every one must recover to twin parity.
        for seed in (20, 21, 22):
            network, similarity = workload(seed=seed)
            trace = random_churn_trace(
                network, ChurnConfig(events=10, seed=seed)
            )
            kill_point = 1 + seed % len(trace)
            root = tmp_path / f"seed-{seed}"
            durable = dict(
                wal_dir=root / "wal",
                snapshot_dir=root / "snaps",
                snapshot_every=3,
                fsync="always",
            )
            twin = run_to_completion(network, similarity, trace)
            crash_after(network, similarity, trace, kill_point, **durable)
            config = ServiceConfig(port=0, batch_max=1, **durable)
            try:
                restarted = DiversificationService.from_snapshot(config)
            except ValueError:
                # crashed before the first snapshot: the operator path is
                # a fresh bootstrap replaying the whole log (the CLI
                # --restore fallback).
                restarted = DiversificationService(
                    network.copy(), similarity.copy(),
                    config=config, recover=True,
                )
            with running_service(restarted) as (client, _):
                client.send(trace[kill_point:], chunk=3)
                client.wait_idle()
                final = client.assignment()
            for key in PARITY_KEYS:
                assert final[key] == twin[key], (seed, key)

    def test_acked_events_survive_with_fsync_always(self, tmp_path):
        network, similarity = workload(seed=13)
        trace = random_churn_trace(network, ChurnConfig(events=6, seed=13))
        pre = crash_after(
            network, similarity, trace, len(trace),
            wal_dir=tmp_path, fsync="always",
        )
        assert pre["events_applied"] == len(trace)
        restarted = DiversificationService(
            network.copy(), similarity.copy(),
            config=ServiceConfig(port=0, batch_max=1, wal_dir=tmp_path),
            recover=True,
        )
        with running_service(restarted) as (client, _):
            post = client.assignment()
        assert post["events_applied"] == len(trace)

    def test_dirty_wal_without_recover_is_refused(self, tmp_path):
        network, similarity = workload(seed=14)
        trace = random_churn_trace(network, ChurnConfig(events=3, seed=14))
        crash_after(
            network, similarity, trace, len(trace),
            wal_dir=tmp_path, fsync="always",
        )
        with pytest.raises(ValueError, match="already holds records"):
            DiversificationService(
                network.copy(), similarity.copy(),
                config=ServiceConfig(port=0, wal_dir=tmp_path),
            )


class TestSnapshotHardening:
    def _durable(self, tmp_path, **extra):
        base = dict(
            wal_dir=tmp_path / "wal",
            snapshot_dir=tmp_path / "snaps",
            snapshot_every=2,
            fsync="always",
        )
        base.update(extra)
        return base

    def test_corrupt_newest_snapshot_falls_back(self, tmp_path):
        network, similarity = workload(seed=15)
        trace = random_churn_trace(network, ChurnConfig(events=8, seed=15))
        durable = self._durable(tmp_path, keep_snapshots=10)
        pre = crash_after(network, similarity, trace, len(trace), **durable)
        snaps = sorted((tmp_path / "snaps").glob("snap-*"))
        assert len(snaps) >= 2
        # vandalise the newest generation's arrays
        (snaps[-1] / "arrays.npz").write_bytes(b"not a zip")
        found = latest_valid_snapshot(tmp_path / "snaps")
        assert found is not None and found[0] == snaps[-2]
        restarted = DiversificationService.from_snapshot(
            ServiceConfig(port=0, batch_max=1, **durable)
        )
        with running_service(restarted) as (client, _):
            post = client.assignment()
        for key in PARITY_KEYS:
            assert post[key] == pre[key], key

    def test_sha256_tamper_is_detected(self, tmp_path):
        network, similarity = workload(seed=16)
        trace = random_churn_trace(network, ChurnConfig(events=4, seed=16))
        durable = self._durable(tmp_path)
        crash_after(network, similarity, trace, len(trace), **durable)
        snaps = sorted((tmp_path / "snaps").glob("snap-*"))
        arrays = snaps[-1] / "arrays.npz"
        blob = bytearray(arrays.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        arrays.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="sha256|checksum|integrity"):
            load_snapshot(snaps[-1])

    def test_meta_records_wal_seq_and_view(self, tmp_path):
        network, similarity = workload(seed=17)
        trace = random_churn_trace(network, ChurnConfig(events=4, seed=17))
        durable = self._durable(tmp_path)
        crash_after(network, similarity, trace, len(trace), **durable)
        found = latest_valid_snapshot(tmp_path / "snaps")
        assert found is not None
        snapshot = found[1]
        assert snapshot.wal_seq > 0
        assert snapshot.view is not None
        assert snapshot.view["energy"] is not None
        assert snapshot.meta["arrays_sha256"]


class TestGracefulDegradation:
    def test_solver_failure_escalates_to_forced_cold_rebuild(self):
        network, similarity = workload(seed=18)
        trace = random_churn_trace(network, ChurnConfig(events=5, seed=18))
        config = ServiceConfig(
            port=0, batch_max=1, fault_plan=parse_fault_plan("solve:error:3")
        )
        service = DiversificationService(
            network.copy(), similarity.copy(), config=config
        )
        with running_service(service) as (client, _):
            client.send(trace, chunk=2)
            client.wait_idle()
            payload = client.assignment()
            text = client.metrics_text()
        assert payload["events_applied"] == len(trace)
        assert payload["version"] == len(trace) + 1
        assert metric_value(text, "repro_writer_failures_total") == 1.0
        assert 'repro_escalations_total{reason="forced"} 1' in text

    def test_twice_failed_batch_lands_in_dead_letter(self, tmp_path):
        network, similarity = workload(seed=19)
        trace = random_churn_trace(network, ChurnConfig(events=5, seed=19))
        config = ServiceConfig(
            port=0, batch_max=1, wal_dir=tmp_path,
            fault_plan=parse_fault_plan("solve:error:3:2"),
        )
        service = DiversificationService(
            network.copy(), similarity.copy(), config=config
        )
        with running_service(service) as (client, _):
            client.send(trace, chunk=2)
            client.wait_idle()
            payload = client.assignment()
            text = client.metrics_text()
        # the queue kept moving: every event applied, one batch quarantined
        assert payload["events_applied"] == len(trace)
        assert metric_value(text, "repro_dead_letter_total") == 1.0
        assert metric_value(text, "repro_writer_failures_total") == 2.0
        rows = [
            json.loads(line)
            for line in (tmp_path / "dead-letter.jsonl").read_text().splitlines()
        ]
        assert len(rows) == 1
        assert rows[0]["seq"] == 2  # boot solve is hit 1, event 2's solve dies
        assert "type" in rows[0]["event"]

    def test_snapshot_failure_is_counted_and_survived(self, tmp_path):
        network, similarity = workload(seed=23)
        trace = random_churn_trace(network, ChurnConfig(events=6, seed=23))
        config = ServiceConfig(
            port=0, batch_max=1, snapshot_dir=tmp_path, snapshot_every=2,
            fault_plan=parse_fault_plan("snapshot:error:1"),
        )
        service = DiversificationService(
            network.copy(), similarity.copy(), config=config
        )
        with running_service(service) as (client, _):
            client.send(trace, chunk=2)
            client.wait_idle()
            text = client.metrics_text()
        assert metric_value(text, "repro_snapshot_failures_total") == 1.0
        assert list(tmp_path.glob("snap-*"))  # later generations landed

    def test_injected_crash_is_not_swallowed_by_except_exception(self):
        with pytest.raises(InjectedCrash):
            try:
                raise InjectedCrash("boom")
            except Exception:  # noqa: BLE001 - the guarantee under test
                pytest.fail("InjectedCrash must escape Exception handlers")


class TestWalIngestion:
    def test_wal_metrics_and_health_surface(self, tmp_path):
        network, similarity = workload(seed=24)
        trace = random_churn_trace(network, ChurnConfig(events=4, seed=24))
        config = ServiceConfig(port=0, batch_max=2, wal_dir=tmp_path)
        service = DiversificationService(
            network.copy(), similarity.copy(), config=config
        )
        with running_service(service) as (client, _):
            client.send(trace, chunk=2)
            client.wait_idle()
            health = client.healthz()
            text = client.metrics_text()
        assert health["wal"] is True
        assert health["wal_seq"] == len(trace)
        assert metric_value(text, "repro_wal_records_total") == len(trace)
        assert metric_value(text, "repro_wal_last_seq") == len(trace)

    def test_compaction_prunes_covered_segments(self, tmp_path):
        network, similarity = workload(seed=25)
        trace = random_churn_trace(network, ChurnConfig(events=10, seed=25))
        config = ServiceConfig(
            port=0, batch_max=1,
            wal_dir=tmp_path / "wal",
            snapshot_dir=tmp_path / "snaps",
            snapshot_every=2,
            wal_segment_records=2,
        )
        service = DiversificationService(
            network.copy(), similarity.copy(), config=config
        )
        with running_service(service) as (client, _):
            client.send(trace, chunk=2)
            client.wait_idle()
        segments = list((tmp_path / "wal").glob("wal-*.log"))
        # ten events at two records/segment would be five segments;
        # snapshot-anchored compaction must have pruned the covered ones.
        assert len(segments) < 5
