"""Tests for the experiment drivers (repro.experiments).

These are the integration tests of the reproduction: each paper artefact's
driver must run end-to-end and produce the paper's qualitative shape.
Heavier variants live in benchmarks/.
"""

import pytest

from repro import experiments
from repro.casestudy.stuxnet import stuxnet_case_study
from repro.network.generator import RandomNetworkConfig


@pytest.fixture(scope="module")
def case():
    return stuxnet_case_study()


class TestFig1:
    def test_exact_paper_probabilities(self):
        results = experiments.fig1_motivational()
        assert results["a"] == pytest.approx(0.0)
        assert results["b"] == pytest.approx(0.125)
        assert results["c"] == pytest.approx(0.5)


class TestFig4:
    @pytest.fixture(scope="class")
    def assignments(self, case):
        return experiments.fig4_assignments(case)

    def test_three_assignments(self, assignments):
        assert set(assignments) == {
            "optimal", "host_constrained", "product_constrained",
        }

    def test_all_complete_and_satisfied(self, assignments):
        for result in assignments.values():
            assert result.assignment.is_complete()
            assert result.satisfied

    def test_constraints_cost_energy(self, assignments):
        assert assignments["optimal"].energy <= assignments["host_constrained"].energy
        assert assignments["optimal"].energy <= assignments["product_constrained"].energy

    def test_pins_honoured(self, assignments, case):
        constrained = assignments["host_constrained"].assignment
        for pin in case.c1.fixed_products():
            assert constrained.get(pin.host, pin.service) == pin.product

    def test_constrained_solutions_differ_from_optimal(self, assignments):
        optimal = assignments["optimal"].assignment
        assert optimal.diff(assignments["host_constrained"].assignment)


class TestTable5:
    @pytest.fixture(scope="class")
    def reports(self, case):
        return experiments.table5_diversity(case)

    def test_paper_row_order(self, reports):
        assert list(reports) == [
            "optimal", "host_constrained", "product_constrained", "random", "mono",
        ]

    def test_reference_probability_constant(self, reports):
        references = {round(r.p_without, 12) for r in reports.values()}
        assert len(references) == 1

    def test_paper_ordering(self, reports):
        """The paper's Table V ordering: α̂ > α̂C1 ≥ α̂C2 > αr > αm."""
        assert reports["optimal"].d_bn > reports["host_constrained"].d_bn
        assert reports["host_constrained"].d_bn >= reports["product_constrained"].d_bn - 1e-9
        assert reports["product_constrained"].d_bn > reports["random"].d_bn
        assert reports["random"].d_bn > reports["mono"].d_bn

    def test_all_bounded(self, reports):
        assert all(0.0 < r.d_bn <= 1.0 for r in reports.values())


class TestTable6:
    def test_small_run_shape(self, case):
        results = experiments.table6_mttc(case, runs=60, seed=3)
        assert len(results) == 4 * 5
        for entry in case.entries:
            mono = results[("mono", entry)]
            optimal = results[("optimal", entry)]
            assert mono.runs == optimal.runs == 60
            # Mono-culture must never be meaningfully more resilient.
            assert mono.mttc <= optimal.mttc * 1.15

    def test_mono_clearly_weakest_from_corporate(self, case):
        results = experiments.table6_mttc(
            case, runs=150, seed=3, labels=("optimal", "mono")
        )
        assert results[("mono", "c4")].mttc < results[("optimal", "c4")].mttc

    def test_parallel_matches_serial(self, case):
        serial = experiments.table6_mttc(
            case, runs=30, seed=3, labels=("optimal", "mono")
        )
        parallel = experiments.table6_mttc(
            case, runs=30, seed=3, labels=("optimal", "mono"), workers=2
        )
        assert list(serial) == list(parallel)
        for key in serial:
            assert serial[key] == parallel[key]


class TestScalability:
    def test_cell_runs_and_reports(self):
        cell = experiments.scalability_cell(
            RandomNetworkConfig(hosts=60, degree=6, services=3, seed=0)
        )
        assert cell.seconds > 0
        assert cell.edges == 180
        assert "hosts=60" in cell.row()

    def test_table7_rows_structure(self):
        rows = experiments.table7_rows(
            host_counts=(30, 60), densities=(("mini", 4, 2),), seed=1
        )
        assert set(rows) == {("mini", 30), ("mini", 60)}

    def test_table8_rows_structure(self):
        rows = experiments.table8_rows(degrees=(3, 5), scales=(("mini", 40, 2),))
        assert set(rows) == {("mini", 3), ("mini", 5)}

    def test_table9_rows_structure(self):
        rows = experiments.table9_rows(service_counts=(2, 4), scales=(("mini", 40, 4),))
        assert set(rows) == {("mini", 2), ("mini", 4)}

    def test_cell_with_cut_shards(self):
        # `--shards cut` routes the cell through the dual solver; the
        # timing row keeps its shape and the dual knobs are honoured.
        cell = experiments.scalability_cell(
            RandomNetworkConfig(hosts=40, degree=2, services=2, seed=0),
            shards="cut",
            dual_options={"parts": 2, "max_rounds": 5, "seed": 0},
        )
        assert cell.seconds > 0
        assert "hosts=40" in cell.row()
        plain = experiments.scalability_cell(
            RandomNetworkConfig(hosts=40, degree=2, services=2, seed=0)
        )
        assert cell.edges == plain.edges

    def test_more_services_cost_more_time(self):
        # 16x the services: the per-sweep message work scales with the
        # stacked service count, so even under machine-load noise the
        # larger workload must be measurably slower.
        small = experiments.scalability_cell(
            RandomNetworkConfig(hosts=200, degree=8, services=2, seed=0)
        )
        large = experiments.scalability_cell(
            RandomNetworkConfig(hosts=200, degree=8, services=32, seed=0)
        )
        assert large.seconds > small.seconds
