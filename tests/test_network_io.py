"""Tests for network serialisation (repro.network.io)."""

import json

import pytest

from repro.network.constraints import (
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.io import (
    load_network,
    network_from_json,
    network_to_json,
    save_network,
)
from repro.network.model import Network


@pytest.fixture
def net():
    network = Network()
    network.add_host("web", {"os": ["windows", "ubuntu"], "db": ["mysql"]})
    network.add_host("hmi", {"os": ["windows"]})
    network.add_link("web", "hmi")
    return network


@pytest.fixture
def constraints():
    return ConstraintSet(
        [
            FixProduct("hmi", "os", "windows"),
            ForbidProduct("web", "os", "windows"),
            RequireCombination("web", "os", "ubuntu", "db", "mysql"),
            AvoidCombination("ALL", "os", "ubuntu", "db", "mysql"),
        ]
    )


class TestRoundTrip:
    def test_network_round_trip(self, net):
        clone, _ = network_from_json(network_to_json(net))
        assert clone.hosts == net.hosts
        assert clone.links == net.links
        for host in net.hosts:
            assert clone.services_of(host) == net.services_of(host)
            for service in net.services_of(host):
                assert clone.candidates(host, service) == net.candidates(host, service)

    def test_constraints_round_trip(self, net, constraints):
        _, clone = network_from_json(network_to_json(net, constraints))
        assert len(clone) == len(constraints)
        assert list(clone) == list(constraints)

    def test_file_round_trip(self, net, constraints, tmp_path):
        path = tmp_path / "deployment.json"
        save_network(net, path, constraints)
        loaded_net, loaded_constraints = load_network(path)
        assert loaded_net.links == net.links
        assert len(loaded_constraints) == 4

    def test_case_study_round_trip(self):
        from repro.casestudy.stuxnet import build_network, product_constraints

        network = build_network()
        constraints = product_constraints()
        clone_net, clone_constraints = network_from_json(
            network_to_json(network, constraints)
        )
        assert clone_net.links == network.links
        assert clone_net.variable_count() == network.variable_count()
        assert list(clone_constraints) == list(constraints)

    def test_optimisation_identical_after_round_trip(self, net):
        from repro.core import diversify
        from repro.nvd.similarity import SimilarityTable

        table = SimilarityTable(pairs={("windows", "ubuntu"): 0.2})
        clone, _ = network_from_json(network_to_json(net))
        original = diversify(net, table)
        reloaded = diversify(clone, table)
        assert original.assignment.as_dict() == reloaded.assignment.as_dict()


class TestValidation:
    def test_not_an_object(self):
        with pytest.raises(ValueError):
            network_from_json("[1, 2]")

    def test_missing_hosts_key(self):
        with pytest.raises(ValueError):
            network_from_json("{}")

    def test_malformed_link(self, net):
        payload = json.loads(network_to_json(net))
        payload["links"] = [["web"]]
        with pytest.raises(ValueError):
            network_from_json(json.dumps(payload))

    def test_unknown_constraint_kind(self, net):
        payload = json.loads(network_to_json(net))
        payload["constraints"] = [{"kind": "teleport"}]
        with pytest.raises(ValueError):
            network_from_json(json.dumps(payload))

    def test_constraint_missing_field(self, net):
        payload = json.loads(network_to_json(net))
        payload["constraints"] = [{"kind": "fix", "host": "web"}]
        with pytest.raises(ValueError):
            network_from_json(json.dumps(payload))

    def test_dangling_link_uses_model_error(self, net):
        payload = json.loads(network_to_json(net))
        payload["links"] = [["web", "ghost"]]
        with pytest.raises(Exception):
            network_from_json(json.dumps(payload))
