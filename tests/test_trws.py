"""Tests for the TRW-S solver (repro.mrf.trws).

Ground truth comes from brute force on small instances: TRW-S must be exact
on trees, its lower bound must never exceed the optimum, and its labelling
must never beat the optimum (impossible) nor trail it badly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mrf.exact import ExactSolver
from repro.mrf.graph import PairwiseMRF
from repro.mrf.trws import TRWSSolver

from helpers import make_random_mrf


class TestDegenerateCases:
    def test_empty_mrf(self):
        result = TRWSSolver().solve(PairwiseMRF())
        assert result.labels == []
        assert result.energy == 0.0
        assert result.converged

    def test_single_node(self):
        mrf = PairwiseMRF()
        mrf.add_node([3.0, 1.0, 2.0])
        result = TRWSSolver().solve(mrf)
        assert result.labels == [1]
        assert result.energy == pytest.approx(1.0)

    def test_isolated_nodes(self):
        mrf = PairwiseMRF()
        mrf.add_node([0.5, 0.1])
        mrf.add_node([0.9, 0.2])
        result = TRWSSolver().solve(mrf)
        assert result.labels == [1, 1]
        assert result.is_certified_optimal()

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            TRWSSolver(max_iterations=0)


class TestExactOnTrees:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_trees(self, seed):
        mrf = make_random_mrf(nodes=7, edge_probability=0.0, max_labels=3,
                              seed=seed, tree=True)
        exact = ExactSolver().solve(mrf)
        result = TRWSSolver(max_iterations=50).solve(mrf)
        assert result.energy == pytest.approx(exact.energy, abs=1e-9)
        assert result.is_certified_optimal(tolerance=1e-6)

    def test_two_node_antiferromagnet(self):
        mrf = PairwiseMRF()
        a = mrf.add_node([0.0, 1.0])
        b = mrf.add_node([0.0, 1.0])
        mrf.add_edge(a, b, np.array([[1.0, 0.0], [0.0, 1.0]]))
        result = TRWSSolver().solve(mrf)
        # Optima are tied at energy 1.0 (e.g. [0, 1] pays unary, [0, 0] pays
        # the edge); the solver must reach that optimum.
        assert result.energy == pytest.approx(1.0)
        assert result.is_certified_optimal()

    def test_chain_colouring(self):
        # A 6-chain with identity-penalty edges: optimal alternates labels.
        mrf = PairwiseMRF()
        nodes = [mrf.add_node([0.0, 0.0]) for _ in range(6)]
        penalty = np.eye(2)
        for a, b in zip(nodes, nodes[1:]):
            mrf.add_edge(a, b, penalty)
        result = TRWSSolver().solve(mrf)
        assert result.energy == pytest.approx(0.0)
        for a, b in zip(result.labels, result.labels[1:]):
            assert a != b


class TestLoopyInstances:
    @pytest.mark.parametrize("seed", range(10))
    def test_bound_below_optimum_and_energy_reachable(self, seed):
        mrf = make_random_mrf(nodes=6, edge_probability=0.5, max_labels=3,
                              seed=seed)
        exact = ExactSolver().solve(mrf)
        result = TRWSSolver(max_iterations=60).solve(mrf)
        assert result.lower_bound <= exact.energy + 1e-9
        assert result.energy >= exact.energy - 1e-9
        # TRW-S should land close to the optimum on these tiny instances.
        assert result.energy <= exact.energy + 0.5

    def test_frustrated_triangle(self):
        # Odd cycle with identity penalties: optimum pays exactly one edge.
        mrf = PairwiseMRF()
        nodes = [mrf.add_node([0.0, 0.0]) for _ in range(3)]
        penalty = np.eye(2)
        mrf.add_edge(nodes[0], nodes[1], penalty)
        mrf.add_edge(nodes[1], nodes[2], penalty)
        mrf.add_edge(nodes[0], nodes[2], penalty)
        result = TRWSSolver(max_iterations=50).solve(mrf)
        assert result.energy == pytest.approx(1.0)
        assert result.lower_bound <= 1.0 + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_bound_is_valid(self, seed):
        mrf = make_random_mrf(nodes=5, edge_probability=0.6, max_labels=3,
                              seed=seed)
        exact = ExactSolver().solve(mrf)
        result = TRWSSolver(max_iterations=30).solve(mrf)
        assert result.lower_bound <= exact.energy + 1e-9
        assert result.energy + 1e-9 >= exact.energy


class TestDiagnostics:
    def test_traces_recorded(self):
        mrf = make_random_mrf(nodes=6, edge_probability=0.5, max_labels=3, seed=1)
        result = TRWSSolver(max_iterations=10).solve(mrf)
        assert len(result.energy_trace) == result.iterations
        assert len(result.bound_trace) == result.iterations
        # best-energy trace is non-increasing, bound trace non-decreasing.
        assert all(a >= b for a, b in zip(result.energy_trace, result.energy_trace[1:]))
        assert all(a <= b for a, b in zip(result.bound_trace, result.bound_trace[1:]))

    def test_compute_bound_disabled(self):
        # Dense graph so the loopy message-passing path (not the forest DP)
        # is exercised.
        mrf = make_random_mrf(nodes=6, edge_probability=1.0, max_labels=3, seed=1)
        result = TRWSSolver(max_iterations=5, compute_bound=False).solve(mrf)
        assert result.lower_bound == float("-inf")
        assert not result.is_certified_optimal()

    def test_optimality_gap(self):
        mrf = PairwiseMRF()
        mrf.add_node([0.0, 1.0])
        result = TRWSSolver().solve(mrf)
        assert result.optimality_gap == pytest.approx(0.0)


class TestSolveArrays:
    """The warm-start API: solve_arrays on a prebuilt plan."""

    def test_cold_solve_arrays_matches_solve(self):
        from repro.mrf.vectorized import MRFArrays

        mrf = make_random_mrf(nodes=8, edge_probability=0.7, max_labels=4, seed=3)
        solver = TRWSSolver(max_iterations=30)
        direct = solver.solve(mrf)
        via_plan = solver.solve_arrays(MRFArrays(mrf))
        assert via_plan.energy == pytest.approx(direct.energy, abs=1e-9)
        assert via_plan.lower_bound == pytest.approx(direct.lower_bound, abs=1e-7)

    def test_messages_updated_in_place_and_reusable(self):
        from repro.mrf.vectorized import MRFArrays

        mrf = make_random_mrf(nodes=8, edge_probability=0.7, max_labels=4, seed=4)
        plan = MRFArrays(mrf)
        solver = TRWSSolver(max_iterations=30)
        messages = plan.zero_messages()
        first = solver.solve_arrays(plan, messages=messages)
        assert np.any(messages != 0.0)  # state written back in place
        # Warm restart from the fixed point: same energy, valid bound.
        warm = TRWSSolver(max_iterations=3).solve_arrays(plan, messages=messages)
        assert warm.energy == pytest.approx(first.energy, abs=1e-9)
        assert warm.lower_bound <= warm.energy + 1e-9

    def test_extra_inits_feed_refine(self):
        from repro.mrf.vectorized import MRFArrays

        mrf = make_random_mrf(nodes=8, edge_probability=0.7, max_labels=4, seed=5)
        plan = MRFArrays(mrf)
        solver = TRWSSolver(max_iterations=2)
        exact = ExactSolver().solve(mrf)
        seeded = solver.solve_arrays(
            plan, extra_inits=(np.asarray(exact.labels, dtype=np.int64),)
        )
        # Seeding with the optimum guarantees the optimum comes back.
        assert seeded.energy == pytest.approx(exact.energy, abs=1e-9)

    def test_greedy_labels_on_plan(self):
        from repro.mrf.vectorized import MRFArrays

        mrf = make_random_mrf(nodes=10, edge_probability=0.5, max_labels=4, seed=6)
        plan = MRFArrays(mrf)
        labels = plan.greedy_labels()
        assert labels.shape == (mrf.node_count,)
        assert np.all(labels < plan.label_counts)
        assert np.isfinite(plan.energy(labels))
