"""Unit tests for configuration constraints (repro.network.constraints)."""

import pytest

from repro.network.assignment import ProductAssignment
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network, NetworkError


@pytest.fixture
def net():
    network = Network()
    network.add_host("a", {"os": ["w", "l"], "wb": ["ie", "ch"]})
    network.add_host("b", {"os": ["w", "l"], "wb": ["ie", "ch"]})
    network.add_host("c", {"os": ["w", "l"]})
    network.add_link("a", "b")
    return network


def full(net, overrides=None):
    values = {
        ("a", "os"): "w", ("a", "wb"): "ie",
        ("b", "os"): "l", ("b", "wb"): "ch",
        ("c", "os"): "w",
    }
    values.update(overrides or {})
    return ProductAssignment(net, values)


class TestFixProduct:
    def test_satisfied(self, net):
        cs = ConstraintSet([FixProduct("a", "os", "w")])
        assert cs.is_satisfied(full(net))

    def test_violated(self, net):
        cs = ConstraintSet([FixProduct("a", "os", "l")])
        violations = cs.violations(full(net))
        assert len(violations) == 1
        assert violations[0].host == "a"

    def test_unassigned_not_violated(self, net):
        cs = ConstraintSet([FixProduct("a", "os", "l")])
        assert cs.is_satisfied(ProductAssignment(net))


class TestForbidProduct:
    def test_violated(self, net):
        cs = ConstraintSet([ForbidProduct("a", "wb", "ie")])
        assert not cs.is_satisfied(full(net))

    def test_satisfied(self, net):
        cs = ConstraintSet([ForbidProduct("a", "wb", "ch")])
        assert cs.is_satisfied(full(net))


class TestCombinations:
    def test_avoid_local_violated(self, net):
        cs = ConstraintSet([AvoidCombination("a", "os", "w", "wb", "ie")])
        assert not cs.is_satisfied(full(net))

    def test_avoid_local_satisfied_when_trigger_absent(self, net):
        cs = ConstraintSet([AvoidCombination("a", "os", "l", "wb", "ie")])
        assert cs.is_satisfied(full(net))

    def test_avoid_global_applies_everywhere(self, net):
        cs = ConstraintSet([AvoidCombination(GLOBAL, "os", "l", "wb", "ch")])
        assert not cs.is_satisfied(full(net))  # violated at b

    def test_avoid_global_skips_hosts_missing_service(self, net):
        # c has no wb service; the global rule must not crash there.
        cs = ConstraintSet([AvoidCombination(GLOBAL, "os", "w", "wb", "xx")])
        assert cs.violations(full(net)) == []

    def test_require_local_violated(self, net):
        cs = ConstraintSet([RequireCombination("a", "os", "w", "wb", "ch")])
        violations = cs.violations(full(net))
        assert len(violations) == 1
        assert "required ch" in violations[0].detail

    def test_require_local_satisfied(self, net):
        cs = ConstraintSet([RequireCombination("a", "os", "w", "wb", "ie")])
        assert cs.is_satisfied(full(net))

    def test_require_vacuous_when_trigger_differs(self, net):
        cs = ConstraintSet([RequireCombination("a", "os", "l", "wb", "ch")])
        assert cs.is_satisfied(full(net))

    def test_require_global(self, net):
        cs = ConstraintSet([RequireCombination(GLOBAL, "os", "l", "wb", "ch")])
        assert cs.is_satisfied(full(net))
        assert not cs.is_satisfied(full(net, {("b", "wb"): "ie"}))


class TestValidation:
    def test_fix_outside_range_rejected(self, net):
        cs = ConstraintSet([FixProduct("a", "os", "mac")])
        with pytest.raises(NetworkError):
            cs.validate_against(net)

    def test_unknown_host_rejected(self, net):
        cs = ConstraintSet([FixProduct("zz", "os", "w")])
        with pytest.raises(NetworkError):
            cs.validate_against(net)

    def test_combination_on_host_without_service_rejected(self, net):
        cs = ConstraintSet([AvoidCombination("c", "os", "w", "wb", "ie")])
        with pytest.raises(NetworkError):
            cs.validate_against(net)

    def test_valid_set_passes(self, net):
        cs = ConstraintSet(
            [
                FixProduct("a", "os", "w"),
                AvoidCombination(GLOBAL, "os", "l", "wb", "ie"),
            ]
        )
        cs.validate_against(net)  # must not raise


class TestContainer:
    def test_add_iter_len_bool(self):
        cs = ConstraintSet()
        assert not cs
        cs.add(FixProduct("a", "os", "w"))
        assert len(cs) == 1 and cs
        assert list(cs)[0].host == "a"

    def test_fixed_products_filter(self):
        cs = ConstraintSet(
            [FixProduct("a", "os", "w"), ForbidProduct("b", "os", "l")]
        )
        assert [c.host for c in cs.fixed_products()] == ["a"]

    def test_describe_mentions_every_constraint(self):
        cs = ConstraintSet(
            [
                FixProduct("a", "os", "w"),
                ForbidProduct("b", "os", "l"),
                RequireCombination("a", "os", "w", "wb", "ie"),
                AvoidCombination(GLOBAL, "os", "l", "wb", "ie"),
            ]
        )
        described = cs.describe()
        assert "must be w" in described
        assert "must not be l" in described
        assert "requires" in described
        assert "all hosts" in described
