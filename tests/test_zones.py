"""Tests for zones and firewall policies (repro.network.zones)."""

import pytest

from repro.network.model import Network
from repro.network.zones import FirewallRule, Zone, ZonedNetwork


class TestZone:
    def test_ring_links(self):
        zone = Zone("z", ("a", "b", "c"))
        assert set(map(frozenset, zone.internal_links())) == {
            frozenset({"a", "b"}), frozenset({"b", "c"}), frozenset({"a", "c"}),
        }

    def test_two_host_ring_single_link(self):
        assert Zone("z", ("a", "b")).internal_links() == [("a", "b")]

    def test_chain_links(self):
        zone = Zone("z", ("a", "b", "c"), topology="chain")
        assert zone.internal_links() == [("a", "b"), ("b", "c")]

    def test_mesh_links(self):
        zone = Zone("z", ("a", "b", "c", "d"), topology="mesh")
        assert len(zone.internal_links()) == 6

    def test_custom_links(self):
        zone = Zone("z", ("a", "b", "c"), topology="custom",
                    links=(("a", "c"),))
        assert zone.internal_links() == [("a", "c")]

    def test_singleton_zone(self):
        assert Zone("z", ("a",)).internal_links() == []

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(name="z", hosts=()),
            dict(name="z", hosts=("a", "a")),
            dict(name="z", hosts=("a",), topology="hypercube"),
            dict(name="z", hosts=("a",), topology="custom", links=(("a", "x"),)),
            dict(name="z", hosts=("a", "b"), links=(("a", "b"),)),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            Zone(**kwargs)


class TestFirewallRule:
    def test_allowed_pairs(self):
        rule = FirewallRule("it", "ot", ("a", "b"), ("x",))
        assert rule.allowed_pairs() == [("a", "x"), ("b", "x")]

    def test_describe(self):
        rule = FirewallRule("it", "ot", ("a",), ("x",), description="historian")
        assert "it -> ot" in rule.describe()
        assert "historian" in rule.describe()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FirewallRule("it", "ot", (), ("x",))


class TestZonedNetwork:
    @pytest.fixture
    def zoned(self):
        it = Zone("it", ("a", "b"), topology="chain")
        ot = Zone("ot", ("x", "y"), topology="chain")
        rule = FirewallRule("it", "ot", ("b",), ("x",))
        return ZonedNetwork([it, ot], [rule])

    def test_zone_of(self, zoned):
        assert zoned.zone_of("a") == "it"
        assert zoned.zone_of("x") == "ot"
        with pytest.raises(KeyError):
            zoned.zone_of("zz")

    def test_all_links(self, zoned):
        assert zoned.all_links() == [("a", "b"), ("b", "x"), ("x", "y")]

    def test_build_network(self, zoned):
        catalog = {h: {"os": ["w", "l"]} for h in ("a", "b", "x", "y")}
        network = zoned.build_network(catalog)
        assert len(network) == 4
        assert network.has_link("b", "x")
        assert not network.has_link("a", "x")

    def test_build_network_missing_catalog(self, zoned):
        with pytest.raises(Exception):
            zoned.build_network({"a": {"os": ["w"]}})

    def test_audit_passes_on_own_build(self, zoned):
        catalog = {h: {"os": ["w"]} for h in ("a", "b", "x", "y")}
        network = zoned.build_network(catalog)
        assert zoned.audit(network) == []

    def test_audit_flags_unauthorised_cross_link(self, zoned):
        network = Network()
        for host in ("a", "b", "x", "y"):
            network.add_host(host, {"os": ["w"]})
        network.add_link("a", "y")  # it → ot without a rule
        violations = zoned.audit(network)
        assert len(violations) == 1
        assert violations[0].link == ("a", "y")
        assert "without a rule" in str(violations[0])

    def test_audit_ignores_unknown_hosts(self, zoned):
        network = Network()
        network.add_host("outsider", {"os": ["w"]})
        network.add_host("a", {"os": ["w"]})
        network.add_link("outsider", "a")
        assert zoned.audit(network) == []

    def test_duplicate_zone_name_rejected(self):
        with pytest.raises(ValueError):
            ZonedNetwork([Zone("z", ("a",)), Zone("z", ("b",))])

    def test_host_in_two_zones_rejected(self):
        with pytest.raises(ValueError):
            ZonedNetwork([Zone("x", ("a",)), Zone("y", ("a",))])

    def test_rule_unknown_zone_rejected(self):
        with pytest.raises(ValueError):
            ZonedNetwork(
                [Zone("it", ("a",))],
                [FirewallRule("it", "ot", ("a",), ("x",))],
            )

    def test_rule_host_outside_zone_rejected(self):
        zones = [Zone("it", ("a",)), Zone("ot", ("x",))]
        with pytest.raises(ValueError):
            ZonedNetwork(zones, [FirewallRule("it", "ot", ("x",), ("x",))])

    def test_describe(self, zoned):
        text = zoned.describe()
        assert "2 zones" in text and "rule it -> ot" in text


class TestCaseStudyPolicy:
    """The case study's hand-written link list obeys a zone policy."""

    def test_case_study_has_no_unauthorised_cross_zone_links(self):
        from repro.casestudy.stuxnet import ZONES, build_network

        zones = [
            Zone(name, tuple(hosts), topology="mesh")
            for name, hosts in ZONES.items()
        ]
        network = build_network()
        # Build the rule set from the actual cross-zone links, then audit —
        # this asserts internal consistency of the reconstruction: every
        # cross-zone link is explicit and intentional.
        zone_of = {h: z for z, hosts in ZONES.items() for h in hosts}
        rules = {}
        for a, b in network.links:
            za, zb = zone_of[a], zone_of[b]
            if za != zb:
                rules.setdefault((za, zb), []).append((a, b))
        firewall = [
            FirewallRule(za, zb, tuple(s for s, _ in pairs),
                         tuple(d for _, d in pairs))
            for (za, zb), pairs in rules.items()
        ]
        zoned = ZonedNetwork(zones, firewall)
        assert zoned.audit(network) == []
        # And the corporate zone never links straight into control.
        assert ("corporate", "control") not in rules
        assert ("control", "corporate") not in rules
