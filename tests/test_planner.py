"""Tests for the budgeted upgrade planner (repro.core.planner)."""

import pytest

from repro.core import diversify, mono_assignment
from repro.core.costs import assignment_energy
from repro.core.planner import plan_upgrade, upgrade_frontier
from repro.network.assignment import ProductAssignment
from repro.network.constraints import AvoidCombination, ConstraintSet, FixProduct
from repro.network.model import Network
from repro.network.topologies import ring_network
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def setting():
    net = ring_network(8, services={"svc": ["p0", "p1", "p2"]})
    table = SimilarityTable(
        pairs={("p0", "p1"): 0.4, ("p1", "p2"): 0.4, ("p0", "p2"): 0.4}
    )
    return net, table, mono_assignment(net)


class TestPlanUpgrade:
    def test_budget_respected(self, setting):
        net, table, current = setting
        plan = plan_upgrade(net, table, current, budget=3)
        assert plan.changes <= 3
        assert len(current.diff(plan.final_assignment)) == plan.changes

    def test_energy_monotone_along_steps(self, setting):
        net, table, current = setting
        plan = plan_upgrade(net, table, current, budget=6)
        energies = [plan.initial_energy] + [s.energy_after for s in plan.steps]
        assert all(a > b for a, b in zip(energies, energies[1:]))

    def test_reported_energies_consistent(self, setting):
        net, table, current = setting
        plan = plan_upgrade(net, table, current, budget=4)
        direct = assignment_energy(net, table, plan.final_assignment)
        assert plan.final_energy == pytest.approx(direct)

    def test_zero_budget_changes_nothing(self, setting):
        net, table, current = setting
        plan = plan_upgrade(net, table, current, budget=0)
        assert plan.changes == 0
        assert plan.final_assignment == current

    def test_negative_budget_rejected(self, setting):
        net, table, current = setting
        with pytest.raises(ValueError):
            plan_upgrade(net, table, current, budget=-1)

    def test_incomplete_current_rejected(self, setting):
        net, table, _ = setting
        with pytest.raises(ValueError):
            plan_upgrade(net, table, ProductAssignment(net), budget=2)

    def test_stops_when_no_gain(self, setting):
        net, table, current = setting
        # With a huge budget the plan ends at a local optimum and stops.
        plan = plan_upgrade(net, table, current, budget=100)
        assert plan.changes < 100
        followup = plan_upgrade(net, table, plan.final_assignment, budget=5)
        assert followup.changes == 0

    def test_large_budget_approaches_optimal(self, setting):
        net, table, current = setting
        plan = plan_upgrade(net, table, current, budget=100)
        optimal = diversify(net, table)
        # Greedy local optimum is within 25% of the global optimum here.
        assert plan.final_energy <= optimal.energy * 1.25 + 1e-9

    def test_pins_never_touched(self, setting):
        net, table, current = setting
        constraints = ConstraintSet([FixProduct("h0", "svc", current.get("h0", "svc"))])
        plan = plan_upgrade(net, table, current, budget=10, constraints=constraints)
        assert plan.final_assignment.get("h0", "svc") == current.get("h0", "svc")

    def test_no_new_combination_violations(self):
        net = Network()
        spec = {"os": ["w", "l"], "wb": ["ie", "ch"]}
        net.add_host("a", spec)
        net.add_host("b", spec)
        net.add_link("a", "b")
        table = SimilarityTable(pairs={("w", "l"): 0.5, ("ie", "ch"): 0.5})
        current = ProductAssignment(
            net,
            {("a", "os"): "w", ("a", "wb"): "ie",
             ("b", "os"): "w", ("b", "wb"): "ie"},
        )
        constraints = ConstraintSet([AvoidCombination("b", "os", "l", "wb", "ie")])
        plan = plan_upgrade(net, table, current, budget=10, constraints=constraints)
        assert constraints.is_satisfied(plan.final_assignment)

    def test_describe_lists_steps(self, setting):
        net, table, current = setting
        plan = plan_upgrade(net, table, current, budget=2)
        text = plan.describe()
        assert "upgrade plan" in text
        assert text.count("->") >= plan.changes


class TestFrontier:
    def test_monotone_non_increasing(self, setting):
        net, table, current = setting
        frontier = upgrade_frontier(net, table, current, max_budget=8)
        values = [frontier[k] for k in sorted(frontier)]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_budget_zero_is_current_energy(self, setting):
        net, table, current = setting
        frontier = upgrade_frontier(net, table, current, max_budget=3)
        assert frontier[0] == pytest.approx(assignment_energy(net, table, current))

    def test_covers_all_budgets(self, setting):
        net, table, current = setting
        frontier = upgrade_frontier(net, table, current, max_budget=30)
        assert set(frontier) == set(range(31))

    def test_diminishing_returns_on_case_study(self):
        from repro.casestudy.stuxnet import stuxnet_case_study

        case = stuxnet_case_study()
        current = mono_assignment(case.network)
        frontier = upgrade_frontier(case.network, case.similarity, current, 6)
        gains = [frontier[k] - frontier[k + 1] for k in range(6)]
        # First change gains at least as much as the fifth (greedy order).
        assert gains[0] >= gains[4] - 1e-9
