"""Tests for the top-level diversification API (repro.core.diversify)."""

import pytest

from repro.core import diversify, mono_assignment
from repro.core.costs import assignment_energy
from repro.network.constraints import (
    GLOBAL,
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    ForbidProduct,
    RequireCombination,
)
from repro.network.model import Network
from repro.network.topologies import chain_network, ring_network
from repro.nvd.similarity import SimilarityTable


class TestUnconstrained:
    def test_chain_alternates(self, two_product_table):
        net = chain_network(5)
        result = diversify(net, two_product_table)
        labels = [result.assignment.get(h, "svc") for h in net.hosts]
        assert all(a != b for a, b in zip(labels, labels[1:]))
        # Alternation leaves every edge at the cross-product similarity 0.4.
        assert result.similarity_total == pytest.approx(4 * 0.4)
        assert result.satisfied

    def test_even_ring_two_colourable(self, two_product_table):
        result = diversify(ring_network(6), two_product_table)
        assert result.similarity_total == pytest.approx(6 * 0.4)

    def test_odd_ring_pays_one_edge(self, two_product_table):
        result = diversify(ring_network(5), two_product_table)
        # An odd cycle with two products: four edges at 0.4, one forced to
        # carry identical products (similarity 1.0).
        assert result.similarity_total == pytest.approx(4 * 0.4 + 1.0)

    def test_beats_mono(self, two_product_table):
        net = ring_network(8)
        optimal = diversify(net, two_product_table)
        mono = mono_assignment(net)
        mono_energy = assignment_energy(net, two_product_table, mono)
        assert optimal.energy < mono_energy

    def test_summary_text(self, two_product_table):
        result = diversify(chain_network(3), two_product_table)
        text = result.summary()
        assert "energy=" in text and "constraints satisfied" in text

    def test_mean_edge_similarity(self, two_product_table):
        result = diversify(ring_network(5), two_product_table)
        assert result.mean_edge_similarity == pytest.approx((4 * 0.4 + 1.0) / 5)


class TestConstrained:
    @pytest.fixture
    def net(self):
        network = Network()
        spec = {"os": ["w", "l"], "wb": ["ie", "ch"]}
        for name in ("a", "b", "c", "d"):
            network.add_host(name, spec)
        network.add_links([("a", "b"), ("b", "c"), ("c", "d")])
        return network

    @pytest.fixture
    def sim(self):
        return SimilarityTable(pairs={("w", "l"): 0.3, ("ie", "ch"): 0.2})

    def test_fix_product_respected(self, net, sim):
        cs = ConstraintSet([FixProduct("b", "os", "l")])
        result = diversify(net, sim, constraints=cs)
        assert result.assignment.get("b", "os") == "l"
        assert result.satisfied
        # Neighbours dodge the pinned product.
        assert result.assignment.get("a", "os") == "w"
        assert result.assignment.get("c", "os") == "w"

    def test_forbid_product_respected(self, net, sim):
        cs = ConstraintSet([ForbidProduct("a", "wb", "ie")])
        result = diversify(net, sim, constraints=cs)
        assert result.assignment.get("a", "wb") == "ch"
        assert result.satisfied

    def test_avoid_combination_respected(self, net, sim):
        cs = ConstraintSet([AvoidCombination(GLOBAL, "os", "l", "wb", "ie")])
        result = diversify(net, sim, constraints=cs)
        assert result.satisfied
        for host in net.hosts:
            if result.assignment.get(host, "os") == "l":
                assert result.assignment.get(host, "wb") != "ie"

    def test_require_combination_respected(self, net, sim):
        cs = ConstraintSet([RequireCombination(GLOBAL, "os", "w", "wb", "ie")])
        result = diversify(net, sim, constraints=cs)
        assert result.satisfied
        for host in net.hosts:
            if result.assignment.get(host, "os") == "w":
                assert result.assignment.get(host, "wb") == "ie"

    def test_constraints_cost_diversity(self, net, sim):
        free = diversify(net, sim)
        pinned = diversify(
            net, sim, constraints=ConstraintSet([FixProduct("b", "os", "l"),
                                                 FixProduct("c", "os", "l")])
        )
        assert pinned.similarity_total >= free.similarity_total

    def test_infeasible_reported_not_raised(self):
        network = Network()
        network.add_host("a", {"os": ["w", "l"], "wb": ["ie"]})
        sim = SimilarityTable()
        # 'wb' can only be ie, but both os options forbid combining with ie.
        cs = ConstraintSet(
            [
                AvoidCombination("a", "os", "w", "wb", "ie"),
                AvoidCombination("a", "os", "l", "wb", "ie"),
            ]
        )
        result = diversify(network, sim, constraints=cs)
        assert not result.satisfied
        assert len(result.violations) == 1


class TestSolverSelection:
    def test_exact_solver(self, two_product_table):
        result = diversify(chain_network(4), two_product_table, solver="exact")
        assert result.certified_optimal
        assert result.similarity_total == pytest.approx(3 * 0.4)

    def test_icm_solver_runs(self, two_product_table):
        result = diversify(chain_network(4), two_product_table, solver="icm")
        assert result.assignment.is_complete()

    def test_bp_solver_runs(self, two_product_table):
        result = diversify(chain_network(4), two_product_table, solver="bp")
        assert result.similarity_total == pytest.approx(3 * 0.4)

    def test_unknown_solver_raises(self, two_product_table):
        with pytest.raises(KeyError):
            diversify(chain_network(3), two_product_table, solver="magic")

    def test_solver_options_forwarded(self, two_product_table):
        result = diversify(
            chain_network(3), two_product_table, fast_path=False, max_iterations=1
        )
        assert result.solver_result.iterations == 1

    def test_trws_matches_exact_on_small_net(self):
        net = ring_network(5, services={"svc": ["p0", "p1", "p2"]})
        sim = SimilarityTable(
            pairs={("p0", "p1"): 0.5, ("p1", "p2"): 0.3, ("p0", "p2"): 0.1}
        )
        trws = diversify(net, sim, fast_path=False)
        exact = diversify(net, sim, solver="exact")
        assert trws.energy == pytest.approx(exact.energy, abs=1e-9)


class TestHeterogeneousNetworks:
    def test_per_host_ranges(self):
        network = Network()
        network.add_host("legacy", {"os": ["xp"]})
        network.add_host("modern", {"os": ["xp", "w10"]})
        network.add_link("legacy", "modern")
        sim = SimilarityTable(pairs={("xp", "w10"): 0.0})
        result = diversify(network, sim)
        assert result.assignment.get("legacy", "os") == "xp"
        assert result.assignment.get("modern", "os") == "w10"

    def test_disjoint_services_no_coupling(self):
        network = Network()
        network.add_host("a", {"os": ["w", "l"]})
        network.add_host("b", {"db": ["m", "p"]})
        network.add_link("a", "b")
        result = diversify(network, SimilarityTable())
        assert result.assignment.is_complete()
        assert result.similarity_total == 0.0
