"""Tests for the concurrent sharded solver (repro.mrf.sharded).

The contract: components share no edges, so solving them independently and
stitching is exact — sharded and monolithic solves must land on identical
energies (and summed dual bounds stay valid) on every workload where the
monolithic solver finds the optimum: the zoned case-study network, the
air-gapped multi-zone family and the sparse random family.
"""

import numpy as np
import pytest

from repro.casestudy.stuxnet import stuxnet_case_study
from repro.core.costs import build_mrf
from repro.core.diversify import diversify
from repro.mrf.batched import (
    BatchedTRWSSolver,
    replicated_problem_from_network,
)
from repro.mrf.bp import LoopyBPSolver
from repro.mrf.partition import split_components, zone_groups
from repro.mrf.sharded import ShardedSolver
from repro.mrf.solvers import available_solvers, get_solver
from repro.mrf.trws import TRWSSolver
from repro.mrf.vectorized import MRFArrays

from tests.test_partition import workload, zoned_workload


class TestConstruction:
    def test_invalid_options(self):
        with pytest.raises(ValueError):
            ShardedSolver(solver="icm")
        with pytest.raises(ValueError):
            ShardedSolver(executor="fibers")
        with pytest.raises(ValueError):
            ShardedSolver(min_shard_nodes=0)

    def test_registry_entries(self):
        assert {"trws-sharded", "bp-sharded"} <= set(available_solvers())
        solver = get_solver("trws-sharded", max_iterations=5)
        assert isinstance(solver, ShardedSolver)
        assert solver.solver_name == "trws"
        assert solver.solver_options["max_iterations"] == 5


class TestEnergyParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sparse_family_trws(self, seed):
        net, table = workload(seed=seed)
        mrf = build_mrf(net, table).mrf
        mono = TRWSSolver().solve(mrf)
        shard = ShardedSolver(solver="trws", workers=2).solve(mrf)
        assert shard.energy == pytest.approx(mono.energy, abs=1e-9)
        assert shard.lower_bound <= shard.energy + 1e-9
        assert mrf.energy(shard.labels) == pytest.approx(
            shard.energy, abs=1e-9
        )

    def test_sparse_family_bp(self):
        net, table = workload(seed=1)
        mrf = build_mrf(net, table).mrf
        mono = LoopyBPSolver().solve(mrf)
        shard = ShardedSolver(solver="bp", workers=2).solve(mrf)
        assert shard.energy == pytest.approx(mono.energy, abs=1e-9)

    def test_zoned_case_study(self):
        case = stuxnet_case_study()
        mono = diversify(case.network, case.similarity, fast_path=False)
        sharded = diversify(
            case.network, case.similarity, fast_path=False, shards=2
        )
        assert sharded.energy == pytest.approx(mono.energy, abs=1e-9)
        assert sharded.certified_optimal == mono.certified_optimal

    def test_airgapped_multi_zone(self):
        _zoned, network, table = zoned_workload(zones=3)
        mono = diversify(network, table, fast_path=False)
        sharded = diversify(network, table, fast_path=False, shards=3)
        assert sharded.energy == pytest.approx(mono.energy, abs=1e-9)

    @pytest.mark.parametrize("executor", ["serial", "threads", "processes"])
    def test_executors_identical(self, executor):
        net, table = workload(seed=3)
        mrf = build_mrf(net, table).mrf
        reference = ShardedSolver(solver="trws", executor="serial").solve(mrf)
        result = ShardedSolver(
            solver="trws", workers=2, executor=executor
        ).solve(mrf)
        assert result.energy == pytest.approx(reference.energy, abs=1e-12)
        assert result.labels == reference.labels

    def test_forest_labels_identical_to_monolithic(self):
        # Chains are forests: both paths dispatch per component to the
        # same deterministic machinery, so even labels agree.
        from repro.network.topologies import chain_network
        from repro.nvd.similarity import SimilarityTable

        net = chain_network(8)
        table = SimilarityTable(products=["p0", "p1"])
        table.set("p0", "p1", 0.6)
        mrf = build_mrf(net, table).mrf
        mono = TRWSSolver().solve(mrf)
        shard = ShardedSolver(solver="trws").solve(mrf)
        assert shard.energy == pytest.approx(mono.energy, abs=1e-9)


class TestWarmStartContract:
    def test_messages_updated_in_place(self):
        net, table = workload(seed=4)
        plan = MRFArrays(build_mrf(net, table).mrf)
        messages = plan.zero_messages()
        solver = ShardedSolver(solver="trws")
        first = solver.solve_arrays(plan, messages=messages)
        assert np.any(messages != 0.0)
        # Re-solving from the converged state matches the cold energy.
        again = solver.solve_arrays(plan, messages=messages)
        assert again.energy == pytest.approx(first.energy, abs=1e-9)

    def test_prebuilt_partition_accepted(self):
        zoned, network, table = zoned_workload(zones=2)
        build = build_mrf(network, table)
        plan = MRFArrays(build.mrf)
        partition = split_components(
            plan, groups=zone_groups(build.variables, zoned)
        )
        solver = ShardedSolver(solver="trws")
        result = solver.solve_arrays(plan, partition=partition)
        mono = TRWSSolver().solve(build.mrf)
        assert result.energy == pytest.approx(mono.energy, abs=1e-9)


class TestReplicatedSharding:
    def test_solve_replicated_parity(self):
        _zoned, network, table = zoned_workload(zones=3)
        problem = replicated_problem_from_network(network, table)
        mono = BatchedTRWSSolver().solve(problem)
        shard = ShardedSolver(solver="trws", workers=2).solve_replicated(
            problem
        )
        assert shard.energy == pytest.approx(mono.energy, abs=1e-9)
        assert shard.labels.shape == mono.labels.shape
        assert problem.energy(shard.labels) == pytest.approx(
            shard.energy, abs=1e-9
        )

    def test_fast_path_diversify_with_shards(self):
        _zoned, network, table = zoned_workload(zones=3)
        mono = diversify(network, table)  # batched fast path
        sharded = diversify(network, table, shards=2)
        assert sharded.energy == pytest.approx(mono.energy, abs=1e-9)
        assert sharded.assignment.is_complete()

    def test_solve_replicated_requires_trws(self):
        _zoned, network, table = zoned_workload(zones=2)
        problem = replicated_problem_from_network(network, table)
        with pytest.raises(ValueError):
            ShardedSolver(solver="bp").solve_replicated(problem)


class TestScalabilityKnob:
    def test_scalability_cell_accepts_shards(self):
        from repro.experiments import scalability_cell
        from repro.network.generator import RandomNetworkConfig

        config = RandomNetworkConfig(hosts=16, degree=3, services=2, seed=0)
        plain = scalability_cell(config, max_iterations=2)
        sharded = scalability_cell(config, max_iterations=2, shards=2)
        assert sharded.energy == pytest.approx(plain.energy, abs=1e-9)
        assert sharded.edges == plain.edges

    def test_empty_mrf(self):
        from repro.mrf.graph import PairwiseMRF

        result = ShardedSolver().solve(PairwiseMRF())
        assert result.labels == []
        assert result.converged
