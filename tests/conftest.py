"""Shared fixtures for the test suite.

Plain helpers (e.g. ``make_random_mrf``) live in :mod:`helpers` and are
imported explicitly by the tests that need them; this file holds only
pytest fixtures.
"""

from __future__ import annotations

import pytest

from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def two_product_table() -> SimilarityTable:
    """Two products with similarity 0.4."""
    return SimilarityTable(pairs={("p0", "p1"): 0.4})


@pytest.fixture
def small_network() -> Network:
    """A 4-host path with one two-product service everywhere."""
    network = Network()
    for i in range(4):
        network.add_host(f"h{i}", {"svc": ["p0", "p1"]})
    network.add_links([("h0", "h1"), ("h1", "h2"), ("h2", "h3")])
    return network
