"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import numpy as np
import pytest

from repro.mrf.graph import PairwiseMRF
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable


def make_random_mrf(
    nodes: int,
    edge_probability: float,
    max_labels: int,
    seed: int,
    tree: bool = False,
) -> PairwiseMRF:
    """A random small MRF with non-negative costs (helper, not a fixture).

    With ``tree=True`` the edge set is a random spanning tree, on which
    TRW-S is exact.
    """
    rng = random.Random(seed)
    mrf = PairwiseMRF()
    label_counts = [rng.randint(2, max_labels) for _ in range(nodes)]
    for count in label_counts:
        mrf.add_node([rng.uniform(0.0, 2.0) for _ in range(count)])
    if tree:
        for node in range(1, nodes):
            parent = rng.randrange(node)
            matrix = np.array(
                [
                    [rng.uniform(0.0, 1.0) for _ in range(label_counts[node])]
                    for _ in range(label_counts[parent])
                ]
            )
            mrf.add_edge(parent, node, matrix)
    else:
        for i in range(nodes):
            for j in range(i + 1, nodes):
                if rng.random() < edge_probability:
                    matrix = np.array(
                        [
                            [rng.uniform(0.0, 1.0) for _ in range(label_counts[j])]
                            for _ in range(label_counts[i])
                        ]
                    )
                    mrf.add_edge(i, j, matrix)
    return mrf


@pytest.fixture
def two_product_table() -> SimilarityTable:
    """Two products with similarity 0.4."""
    return SimilarityTable(pairs={("p0", "p1"): 0.4})


@pytest.fixture
def small_network() -> Network:
    """A 4-host path with one two-product service everywhere."""
    network = Network()
    for i in range(4):
        network.add_host(f"h{i}", {"svc": ["p0", "p1"]})
    network.add_links([("h0", "h1"), ("h1", "h2"), ("h2", "h3")])
    return network
