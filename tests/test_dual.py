"""Tests for Lagrangian dual decomposition over edge cuts (repro.mrf.dual).

The contract under test is the paper-scale one: on a single giant connected
component — exactly where per-component sharding stops helping — the dual
solver must land within its own *reported, certified* duality gap of the
monolithic TRW-S solve, whatever executor runs the shards.
"""

import random

import numpy as np
import pytest

from repro.core.costs import build_mrf
from repro.core.diversify import diversify
from repro.mrf import (
    DualDecompositionSolver,
    DualSolveResult,
    MRFArrays,
    TRWSSolver,
)
from repro.mrf.partition import cut_parts
from repro.mrf.solvers import available_solvers, get_solver
from repro.network.topologies import (
    chain_network,
    grid_network,
    scale_free_network,
    tree_network,
)
from repro.nvd.similarity import SimilarityTable

SPEC = {"os": ("os_a", "os_b", "os_c"), "db": ("db_a", "db_b", "db_c")}


def similarity_for(spec=SPEC, seed=1):
    rng = random.Random(seed)
    table = SimilarityTable()
    for products in spec.values():
        for product in products:
            table.add_product(product)
        for i, a in enumerate(products):
            for b in products[i + 1:]:
                table.set(a, b, round(rng.uniform(0.1, 0.9), 3))
    return table


def giant_component(hosts=40, seed=0):
    """One connected scale-free estate — the shape sharding can't split."""
    net = scale_free_network(hosts, attach=2, seed=seed, services=SPEC)
    return net, similarity_for(seed=seed + 1)


def mrf_for(net, table):
    return build_mrf(net, table).mrf


class TestRegistry:
    def test_registered(self):
        assert "trws-dual" in available_solvers()
        solver = get_solver("trws-dual", parts=2)
        assert isinstance(solver, DualDecompositionSolver)
        assert solver.name == "trws-dual"

    def test_validation(self):
        with pytest.raises(ValueError, match="solver='trws'"):
            DualDecompositionSolver(solver="bp")
        with pytest.raises(ValueError, match="executor"):
            DualDecompositionSolver(executor="mpi")
        with pytest.raises(ValueError, match="parts"):
            DualDecompositionSolver(parts=0)
        with pytest.raises(ValueError, match="max_rounds"):
            DualDecompositionSolver(max_rounds=0)
        with pytest.raises(ValueError, match="gap_tolerance"):
            DualDecompositionSolver(gap_tolerance=-1.0)

    def test_compute_bound_forced_on(self):
        # Without certified shard bounds the Polyak step has no reference
        # point (regression: compute_bound=False produced NaN multipliers).
        solver = DualDecompositionSolver(compute_bound=False)
        assert solver.solver_options["compute_bound"] is True


class TestFallbacks:
    def test_empty_mrf(self):
        net = chain_network(0)
        result = DualDecompositionSolver().solve(mrf_for(net, similarity_for(
            {"svc": ("p0", "p1")})))
        assert result.energy == 0.0
        assert result.labels == []

    def test_single_part_is_monolithic(self):
        net, table = giant_component(hosts=12)
        mrf = mrf_for(net, table)
        dual = DualDecompositionSolver(parts=1, seed=0).solve(mrf)
        mono = TRWSSolver(seed=0).solve(mrf)
        assert isinstance(dual, DualSolveResult)
        assert dual.rounds == 0
        assert dual.consensus
        assert dual.cut_edge_count == 0
        assert dual.energy == pytest.approx(mono.energy, abs=1e-9)


class TestGiantComponentParity:
    """The acceptance contract on connected graphs."""

    def _check(self, dual, mono, mrf):
        # the reported energy is the ground truth of the labelling
        assert mrf.energy(dual.labels) == pytest.approx(
            dual.energy, abs=1e-9
        )
        # the gap brackets the distance to the optimum: dual's bound is a
        # valid global lower bound, so it undercuts mono's labelling too
        assert dual.duality_gap >= -1e-12
        assert dual.lower_bound <= dual.energy + 1e-9
        assert dual.lower_bound <= mono.energy + 1e-9
        assert dual.energy - mono.energy <= dual.duality_gap + 1e-9

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scale_free_within_certified_gap(self, seed):
        net, table = giant_component(hosts=40, seed=seed)
        mrf = mrf_for(net, table)
        mono = TRWSSolver(seed=0).solve(mrf)
        dual = DualDecompositionSolver(parts=4, seed=0).solve(mrf)
        assert dual.parts == 4
        assert dual.cut_edge_count > 0
        assert dual.rounds >= 1
        self._check(dual, mono, mrf)

    def test_grid_within_certified_gap(self):
        net = grid_network(5, 6, services=SPEC)
        table = similarity_for(seed=3)
        mrf = mrf_for(net, table)
        mono = TRWSSolver(seed=0).solve(mrf)
        dual = DualDecompositionSolver(parts=3, seed=0).solve(mrf)
        self._check(dual, mono, mrf)

    def test_forest_cut_reaches_exact_optimum(self):
        # Cut shards of a tree are forests, so every shard solves exactly
        # (min-sum DP) and the dual loop converges to the tree's certified
        # optimum — which monolithic TRW-S also computes exactly.
        net = tree_network(4, branching=2, services=SPEC)
        table = similarity_for(seed=4)
        mrf = mrf_for(net, table)
        mono = TRWSSolver(seed=0).solve(mrf)
        dual = DualDecompositionSolver(
            parts=4, seed=0, max_rounds=80
        ).solve(mrf)
        assert dual.energy == pytest.approx(mono.energy, abs=1e-6)
        assert dual.duality_gap <= 1e-6 * max(1.0, abs(dual.energy))

    def test_strong_unaries_reach_consensus(self):
        # Near-decided nodes: shards agree almost immediately and the loop
        # exits on consensus with a (near-)zero gap.
        rng = np.random.default_rng(5)
        n = 30
        unaries = [rng.normal(size=3) * 10.0 for _ in range(n)]
        first = np.arange(n - 1)
        second = np.arange(1, n)
        plan = MRFArrays.from_parts(
            unaries, first, second, np.zeros(n - 1, dtype=np.int64),
            [np.eye(3)],
        )
        dual = DualDecompositionSolver(parts=3, seed=0)
        result = dual.solve_arrays(plan)
        assert result.consensus
        assert result.converged
        mono = TRWSSolver(seed=0).solve_arrays(
            MRFArrays.from_parts(
                unaries, first, second, np.zeros(n - 1, dtype=np.int64),
                [np.eye(3)],
            )
        )
        assert result.energy == pytest.approx(mono.energy, abs=1e-9)


@pytest.mark.slow
class TestExecutors:
    """Determinism must not depend on how shard solves are scheduled."""

    @pytest.fixture(scope="class")
    def problem(self):
        net, table = giant_component(hosts=30, seed=6)
        return mrf_for(net, table)

    def _solve(self, mrf, executor, workers=2):
        solver = DualDecompositionSolver(
            parts=4, seed=0, executor=executor, workers=workers
        )
        return solver.solve(mrf)

    def test_all_executors_byte_identical(self, problem):
        serial = self._solve(problem, "serial")
        threads = self._solve(problem, "threads")
        processes = self._solve(problem, "processes")
        for other in (threads, processes):
            assert np.array_equal(serial.labels, other.labels)
            assert serial.energy == other.energy
            assert serial.lower_bound == other.lower_bound
            assert serial.rounds == other.rounds
            assert serial.consensus == other.consensus

    def test_repeat_solves_identical(self, problem):
        first = self._solve(problem, "threads")
        again = self._solve(problem, "threads")
        assert np.array_equal(first.labels, again.labels)
        assert first.energy == again.energy

    def test_worker_count_does_not_change_result(self, problem):
        one = self._solve(problem, "threads", workers=1)
        four = self._solve(problem, "threads", workers=4)
        assert np.array_equal(one.labels, four.labels)
        assert one.energy == four.energy


class TestExplicitPartition:
    def test_caller_partition_is_used(self):
        net, table = giant_component(hosts=16, seed=7)
        plan = MRFArrays(mrf_for(net, table))
        partition = cut_parts(
            plan.unary_vectors(), plan.edge_first, plan.edge_second,
            plan.edge_cid, plan.matrix_stack(), lmax=plan.lmax, parts=2,
        )
        solver = DualDecompositionSolver(parts=5, seed=0)
        result = solver.solve_arrays(plan, partition=partition)
        assert result.parts == len(partition)
        assert result.cut_edge_count == len(partition.cut_edges)


@pytest.mark.slow
class TestDiversifyIntegration:
    def test_shards_cut_both_pipelines(self):
        net, table = giant_component(hosts=20, seed=8)
        direct = diversify(
            net, table, fast_path=False, shards="cut", parts=3, seed=0
        )
        python = diversify(
            net, table, fast_path=False, shards="cut", compile="python",
            parts=3, seed=0,
        )
        assert direct.assignment.is_complete()
        assert direct.energy == pytest.approx(python.energy, abs=1e-9)

    def test_cut_reports_valid_bound(self):
        net, table = giant_component(hosts=20, seed=9)
        mono = diversify(net, table, fast_path=False)
        cut = diversify(
            net, table, fast_path=False, shards="cut", parts=3, seed=0
        )
        assert cut.lower_bound <= mono.energy + 1e-9


@pytest.mark.slow
class TestFaultDrill:
    """An injected crash mid-round must escape cleanly and leave the
    solver reusable — the recovery story of a distributed outer loop."""

    def test_injected_crash_inside_outer_round(self, monkeypatch):
        from repro.service import InjectedCrash, parse_fault_plan

        net, table = giant_component(hosts=20, seed=10)
        mrf = mrf_for(net, table)
        reference = DualDecompositionSolver(parts=3, seed=0).solve(mrf)
        assert reference.rounds >= 2

        # Crash on the second multiplier update — i.e. *inside* round 2,
        # after shard solves have run and state is mid-flight.
        plan = parse_fault_plan("solve:crash:2")
        original = DualDecompositionSolver._subgradient_step

        def faulted(self, *args, **kwargs):
            if plan.fire("solve") == "crash":
                plan.crash()
            return original(self, *args, **kwargs)

        monkeypatch.setattr(
            DualDecompositionSolver, "_subgradient_step", faulted
        )
        solver = DualDecompositionSolver(parts=3, seed=0)
        with pytest.raises(InjectedCrash):
            solver.solve(mrf)
        monkeypatch.setattr(
            DualDecompositionSolver, "_subgradient_step", original
        )
        # The same solver instance recovers: a fresh solve from scratch is
        # byte-identical to an uncrashed run (no multiplier/scratch leak).
        recovered = solver.solve(mrf)
        assert np.array_equal(recovered.labels, reference.labels)
        assert recovered.energy == reference.energy
        assert recovered.rounds == reference.rounds

    def test_injected_crash_closes_process_backend(self, monkeypatch):
        from repro.mrf import dual as dual_module
        from repro.service import InjectedCrash, parse_fault_plan

        net, table = giant_component(hosts=20, seed=11)
        mrf = mrf_for(net, table)
        closed = []
        original_close = dual_module._ProcessBackend.close

        def tracking_close(self):
            closed.append(True)
            return original_close(self)

        monkeypatch.setattr(
            dual_module._ProcessBackend, "close", tracking_close
        )
        plan = parse_fault_plan("solve:crash:1")
        original = DualDecompositionSolver._subgradient_step

        def faulted(self, *args, **kwargs):
            if plan.fire("solve") == "crash":
                plan.crash()
            return original(self, *args, **kwargs)

        monkeypatch.setattr(
            DualDecompositionSolver, "_subgradient_step", faulted
        )
        solver = DualDecompositionSolver(
            parts=3, seed=0, executor="processes", workers=2
        )
        with pytest.raises(InjectedCrash):
            solver.solve(mrf)
        # the finally-block released the pool and shared cost block
        assert closed
