"""Tests for least attacking effort and k-zero-day safety
(repro.metrics.effort)."""

import pytest

from repro.core.baselines import mono_assignment
from repro.metrics.effort import (
    exploit_equivalence_classes,
    k_zero_day_safety,
    least_attack_effort,
)
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable


def alternating(net, products=("x", "y")):
    assignment = ProductAssignment(net)
    for index, host in enumerate(net.hosts):
        assignment.assign(host, "svc", products[index % len(products)])
    return assignment


class TestLeastEffort:
    def test_mono_chain_needs_one_exploit(self):
        net = chain_network(5, services={"svc": ["x", "y"]})
        result = least_attack_effort(net, mono_assignment(net), "h0", "h4")
        assert result.effort == 1
        assert result.exact
        assert result.path == ("h0", "h1", "h2", "h3", "h4")

    def test_alternating_chain_needs_two(self):
        net = chain_network(5, services={"svc": ["x", "y"]})
        result = least_attack_effort(net, alternating(net), "h0", "h4")
        assert result.effort == 2
        assert result.exploits == {"x", "y"}

    def test_three_product_rotation_needs_three(self):
        net = chain_network(4, services={"svc": ["x", "y", "z"]})
        result = least_attack_effort(
            net, alternating(net, ("x", "y", "z")), "h0", "h3"
        )
        assert result.effort == 3

    def test_entry_equals_target(self):
        net = chain_network(3)
        result = least_attack_effort(net, mono_assignment(net), "h0", "h0")
        assert result.effort == 0 and result.path == ("h0",)

    def test_prefers_cheap_detour_over_short_expensive_path(self):
        # Direct 2-hop path uses two products; a 3-hop detour reuses one.
        net = Network()
        for name in ("entry", "mid", "d1", "d2", "target"):
            net.add_host(name, {"svc": ["x", "y"]})
        net.add_links(
            [("entry", "mid"), ("mid", "target"),
             ("entry", "d1"), ("d1", "d2"), ("d2", "target")]
        )
        assignment = ProductAssignment(
            net,
            {
                ("entry", "svc"): "x", ("mid", "svc"): "y",
                ("d1", "svc"): "x", ("d2", "svc"): "x", ("target", "svc"): "x",
            },
        )
        result = least_attack_effort(net, assignment, "entry", "target")
        assert result.effort == 1
        assert result.path == ("entry", "d1", "d2", "target")

    def test_entry_product_costs_nothing(self):
        # The attacker starts on the entry host; only destinations need
        # exploits.
        net = chain_network(2, services={"svc": ["x", "y"]})
        assignment = ProductAssignment(
            net, {("h0", "svc"): "x", ("h1", "svc"): "y"}
        )
        result = least_attack_effort(net, assignment, "h0", "h1")
        assert result.effort == 1
        assert result.exploits == {"y"}

    def test_unreachable_raises(self):
        net = Network()
        net.add_host("a", {"svc": ["x"]})
        net.add_host("b", {"svc": ["x"]})
        assignment = ProductAssignment(net, {("a", "svc"): "x", ("b", "svc"): "x"})
        with pytest.raises(ValueError):
            least_attack_effort(net, assignment, "a", "b")

    def test_no_shared_service_blocks_edge(self):
        net = Network()
        net.add_host("a", {"svc": ["x"]})
        net.add_host("b", {"other": ["y"]})
        net.add_link("a", "b")
        assignment = ProductAssignment(net, {("a", "svc"): "x", ("b", "other"): "y"})
        with pytest.raises(ValueError):
            least_attack_effort(net, assignment, "a", "b")

    def test_unknown_hosts_raise(self):
        net = chain_network(3)
        with pytest.raises(KeyError):
            least_attack_effort(net, mono_assignment(net), "zz", "h2")
        with pytest.raises(KeyError):
            least_attack_effort(net, mono_assignment(net), "h0", "zz")

    def test_beam_fallback_flags_inexact(self):
        net = chain_network(6, services={"svc": ["x", "y"]})
        result = least_attack_effort(
            net, alternating(net), "h0", "h5", max_states=1
        )
        assert not result.exact
        assert result.effort >= 2  # upper bound, still a valid attack


class TestEquivalenceClasses:
    def test_threshold_groups_transitively(self):
        table = SimilarityTable(
            pairs={("a", "b"): 0.5, ("b", "c"): 0.5, ("c", "d"): 0.05}
        )
        classes = exploit_equivalence_classes(table, threshold=0.3)
        assert classes["a"] == classes["b"] == classes["c"]
        assert classes["d"] != classes["a"]

    def test_high_threshold_keeps_singletons(self):
        table = SimilarityTable(pairs={("a", "b"): 0.5})
        classes = exploit_equivalence_classes(table, threshold=0.9)
        assert classes["a"] != classes["b"]

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            exploit_equivalence_classes(SimilarityTable(), threshold=0.0)


class TestKZeroDay:
    def test_similar_products_fall_to_one_zero_day(self):
        net = chain_network(5, services={"svc": ["x", "y"]})
        assignment = alternating(net)
        similar = SimilarityTable(pairs={("x", "y"): 0.6})
        distinct = SimilarityTable(pairs={("x", "y"): 0.1})
        k_similar = k_zero_day_safety(
            net, assignment, similar, "h0", "h4", threshold=0.3
        )
        k_distinct = k_zero_day_safety(
            net, assignment, distinct, "h0", "h4", threshold=0.3
        )
        assert k_similar.effort == 1
        assert k_distinct.effort == 2

    def test_monotone_in_threshold(self):
        net = chain_network(5, services={"svc": ["x", "y"]})
        assignment = alternating(net)
        table = SimilarityTable(pairs={("x", "y"): 0.5})
        loose = k_zero_day_safety(net, assignment, table, "h0", "h4", threshold=0.3)
        strict = k_zero_day_safety(net, assignment, table, "h0", "h4", threshold=0.9)
        assert loose.effort <= strict.effort

    def test_case_study_mono_vs_optimal(self):
        from repro.casestudy.stuxnet import stuxnet_case_study
        from repro.core import diversify

        case = stuxnet_case_study()
        optimal = diversify(case.network, case.similarity).assignment
        mono = mono_assignment(case.network)
        effort_optimal = least_attack_effort(case.network, optimal, "c4", "t5")
        effort_mono = least_attack_effort(case.network, mono, "c4", "t5")
        assert effort_mono.effort <= effort_optimal.effort
        assert effort_mono.effort == 1  # mono-culture: one exploit end to end
