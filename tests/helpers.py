"""Shared test helpers, imported explicitly by test modules.

Helpers live here — not in ``conftest.py`` — because pytest imports every
``conftest.py`` under a top-level module name: with both ``tests/`` and
``benchmarks/`` carrying one, ``from conftest import ...`` resolves to
whichever directory was collected first and breaks repo-root runs.  A
uniquely-named module has no such collision.
"""

from __future__ import annotations

import random

import numpy as np

from repro.mrf.graph import PairwiseMRF

__all__ = ["make_random_mrf"]


def make_random_mrf(
    nodes: int,
    edge_probability: float,
    max_labels: int,
    seed: int,
    tree: bool = False,
) -> PairwiseMRF:
    """A random small MRF with non-negative costs.

    With ``tree=True`` the edge set is a random spanning tree, on which
    TRW-S is exact.
    """
    rng = random.Random(seed)
    mrf = PairwiseMRF()
    label_counts = [rng.randint(2, max_labels) for _ in range(nodes)]
    for count in label_counts:
        mrf.add_node([rng.uniform(0.0, 2.0) for _ in range(count)])
    if tree:
        for node in range(1, nodes):
            parent = rng.randrange(node)
            matrix = np.array(
                [
                    [rng.uniform(0.0, 1.0) for _ in range(label_counts[node])]
                    for _ in range(label_counts[parent])
                ]
            )
            mrf.add_edge(parent, node, matrix)
    else:
        for i in range(nodes):
            for j in range(i + 1, nodes):
                if rng.random() < edge_probability:
                    matrix = np.array(
                        [
                            [rng.uniform(0.0, 1.0) for _ in range(label_counts[j])]
                            for _ in range(label_counts[i])
                        ]
                    )
                    mrf.add_edge(i, j, matrix)
    return mrf
