"""Unit tests for the network model (repro.network.model)."""

import pytest

from repro.network.model import Network, NetworkError


@pytest.fixture
def net():
    network = Network()
    network.add_host("a", {"os": ["w", "l"], "db": ["m", "p"]})
    network.add_host("b", {"os": ["w", "l"]})
    network.add_host("c", {"db": ["m", "p"]})
    network.add_link("a", "b")
    network.add_link("a", "c")
    return network


class TestBuilding:
    def test_duplicate_host_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_duplicate_service_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_service("a", "os", ["w"])

    def test_empty_candidates_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_service("b", "db", [])

    def test_candidates_deduplicated(self):
        network = Network()
        network.add_host("x", {"s": ["a", "b", "a"]})
        assert network.candidates("x", "s") == ("a", "b")

    def test_self_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("a", "a")

    def test_duplicate_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("b", "a")

    def test_link_to_unknown_host_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_link("a", "zz")

    def test_set_candidates_replaces(self, net):
        net.set_candidates("a", "os", ["w"])
        assert net.candidates("a", "os") == ("w",)

    def test_set_candidates_cannot_empty(self, net):
        with pytest.raises(NetworkError):
            net.set_candidates("a", "os", [])


class TestMutation:
    def test_remove_link(self, net):
        net.remove_link("b", "a")
        assert not net.has_link("a", "b")
        assert "b" not in net.neighbors("a")
        assert net.edge_count() == 1

    def test_remove_missing_link_rejected(self, net):
        with pytest.raises(NetworkError):
            net.remove_link("b", "c")

    def test_remove_host_drops_links(self, net):
        net.remove_host("a")
        assert "a" not in net
        assert net.edge_count() == 0
        assert net.neighbors("b") == []
        assert net.neighbors("c") == []

    def test_remove_unknown_host_rejected(self, net):
        with pytest.raises(NetworkError):
            net.remove_host("zz")

    def test_readd_after_remove(self, net):
        net.remove_host("b")
        net.add_host("b", {"os": ["w", "l"]})
        net.add_link("a", "b")
        assert net.has_link("a", "b")


class TestQueries:
    def test_basic_counts(self, net):
        assert len(net) == 3
        assert net.edge_count() == 2
        assert net.variable_count() == 4

    def test_links_sorted(self, net):
        assert net.links == [("a", "b"), ("a", "c")]

    def test_neighbors(self, net):
        assert net.neighbors("a") == ["b", "c"]
        assert net.degree("a") == 2
        assert net.degree("b") == 1

    def test_services_of(self, net):
        assert net.services_of("a") == ["os", "db"]
        assert net.services_of("c") == ["db"]

    def test_has_service(self, net):
        assert net.has_service("a", "db")
        assert not net.has_service("b", "db")
        assert not net.has_service("nope", "db")

    def test_shared_services(self, net):
        assert net.shared_services("a", "b") == ["os"]
        assert net.shared_services("a", "c") == ["db"]
        assert net.shared_services("b", "c") == []

    def test_all_services_first_seen_order(self, net):
        assert net.all_services() == ["os", "db"]

    def test_all_products(self, net):
        assert set(net.all_products()) == {"w", "l", "m", "p"}
        assert set(net.all_products("os")) == {"w", "l"}

    def test_hosts_with_service(self, net):
        assert net.hosts_with_service("db") == ["a", "c"]

    def test_assignment_space_size(self, net):
        assert net.assignment_space_size() == 2 * 2 * 2 * 2

    def test_unknown_host_raises(self, net):
        with pytest.raises(NetworkError):
            net.neighbors("zz")
        with pytest.raises(NetworkError):
            net.candidates("zz", "os")
        with pytest.raises(NetworkError):
            net.candidates("a", "nope")


class TestExport:
    def test_to_networkx(self, net):
        graph = net.to_networkx()
        assert set(graph.nodes) == {"a", "b", "c"}
        assert graph.number_of_edges() == 2
        assert graph.nodes["a"]["services"]["os"] == ["w", "l"]

    def test_copy_is_independent(self, net):
        clone = net.copy()
        clone.add_host("d", {"os": ["w"]})
        clone.add_link("d", "a")
        assert "d" not in net
        assert net.edge_count() == 2
        assert clone.edge_count() == 3

    def test_repr(self, net):
        assert "3 hosts" in repr(net)
