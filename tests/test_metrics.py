"""Tests for the diversity metric and MTTC (repro.metrics)."""

import math

import pytest

from repro.core.baselines import mono_assignment
from repro.metrics.diversity import diversity_metric
from repro.metrics.mttc import mean_time_to_compromise
from repro.network.assignment import ProductAssignment
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def setting():
    net = chain_network(5, services={"svc": ["x", "y"]})
    similarity = SimilarityTable(pairs={("x", "y"): 0.2})
    mono = mono_assignment(net)
    alternating = ProductAssignment(net)
    for i, host in enumerate(net.hosts):
        alternating.assign(host, "svc", "x" if i % 2 == 0 else "y")
    return net, similarity, mono, alternating


class TestDiversityMetric:
    def test_reference_constant_across_assignments(self, setting):
        net, similarity, mono, alternating = setting
        a = diversity_metric(net, mono, similarity, "h0", "h4")
        b = diversity_metric(net, alternating, similarity, "h0", "h4")
        assert a.p_without == pytest.approx(b.p_without)

    def test_dbn_bounded_and_ordered(self, setting):
        net, similarity, mono, alternating = setting
        a = diversity_metric(net, mono, similarity, "h0", "h4")
        b = diversity_metric(net, alternating, similarity, "h0", "h4")
        assert 0.0 < a.d_bn <= 1.0
        assert 0.0 < b.d_bn <= 1.0
        assert b.d_bn > a.d_bn  # diversified beats mono

    def test_mono_probability_higher(self, setting):
        net, similarity, mono, alternating = setting
        a = diversity_metric(net, mono, similarity, "h0", "h4")
        b = diversity_metric(net, alternating, similarity, "h0", "h4")
        assert a.p_with > b.p_with

    def test_log_properties(self, setting):
        net, similarity, mono, _ = setting
        report = diversity_metric(net, mono, similarity, "h0", "h4")
        assert report.log10_p_with == pytest.approx(math.log10(report.p_with))
        assert "d_bn=" in report.row("mono")

    def test_zero_probability_logs(self, setting):
        net, similarity, _, alternating = setting
        report = diversity_metric(
            net, alternating, similarity, "h0", "h4", p_avg=0.0, p_max=0.0
        )
        assert report.log10_p_with == float("-inf")
        assert report.d_bn == 1.0  # both zero → perfectly diverse by convention

    def test_monte_carlo_method_close_to_bn(self, setting):
        net, similarity, mono, _ = setting
        bn = diversity_metric(net, mono, similarity, "h0", "h4", method="bn")
        mc = diversity_metric(
            net, mono, similarity, "h0", "h4",
            method="montecarlo", samples=20000, seed=3,
        )
        assert mc.p_with == pytest.approx(bn.p_with, abs=0.02)

    def test_unknown_method_rejected(self, setting):
        net, similarity, mono, _ = setting
        with pytest.raises(ValueError):
            diversity_metric(net, mono, similarity, "h0", "h4", method="magic")

    def test_sophisticated_attacker_at_least_uniform(self, setting):
        net, similarity, mono, _ = setting
        uniform = diversity_metric(net, mono, similarity, "h0", "h4", attacker="uniform")
        strong = diversity_metric(
            net, mono, similarity, "h0", "h4", attacker="sophisticated"
        )
        assert strong.p_with >= uniform.p_with - 1e-12


class TestMTTC:
    def test_mono_faster_than_diverse(self, setting):
        net, similarity, mono, alternating = setting
        kwargs = dict(entry="h0", target="h4", runs=300, max_ticks=300, seed=5)
        mono_result = mean_time_to_compromise(net, mono, similarity, **kwargs)
        diverse_result = mean_time_to_compromise(net, alternating, similarity, **kwargs)
        assert mono_result.mttc < diverse_result.mttc

    def test_reproducible(self, setting):
        net, similarity, mono, _ = setting
        kwargs = dict(entry="h0", target="h4", runs=50, seed=9)
        a = mean_time_to_compromise(net, mono, similarity, **kwargs)
        b = mean_time_to_compromise(net, mono, similarity, **kwargs)
        assert a.mttc == b.mttc

    def test_success_rate_and_censoring(self, setting):
        net, similarity, mono, _ = setting
        result = mean_time_to_compromise(
            net, mono, similarity, entry="h0", target="h4",
            runs=40, max_ticks=2, seed=1,
        )
        assert result.censored == result.runs - round(result.success_rate * result.runs)
        assert 0.0 <= result.success_rate <= 1.0

    def test_impossible_target_fully_censored(self, setting):
        net, similarity, mono, _ = setting
        result = mean_time_to_compromise(
            net, mono, similarity, entry="h0", target="h4",
            runs=20, max_ticks=50, p_avg=0.0, p_max=0.0, seed=1,
        )
        assert result.success_rate == 0.0
        assert result.mttc == 50.0
        assert result.censored == 20

    def test_row_format(self, setting):
        net, similarity, mono, _ = setting
        result = mean_time_to_compromise(
            net, mono, similarity, entry="h0", target="h4", runs=10, seed=1
        )
        assert "MTTC=" in result.row("mono")
