"""Tests for the parallel experiment engine (repro.runner).

The contract under test: a job grid produces *identical* results whether it
runs serially or over a process pool — same keys, same order, same values —
because every job carries its own deterministic seed and results are
collected in job order, not completion order.
"""


import pytest

from repro import experiments
from repro.analysis.sensitivity import (
    calibration_sensitivity,
    similarity_perturbation_sensitivity,
)
from repro.network.topologies import ring_network
from repro.nvd.similarity import SimilarityTable
from repro.runner import Job, JobPool, derive_seed, resolve_workers, run_jobs
from repro.runner import engine as runner_engine


def _square(x, seed=0):
    return (x * x, seed)


def _fail(message):
    raise RuntimeError(message)


def _array_result(seed=0, rows=128):
    """A result mixing a shared-memory-sized array with inline payload."""
    import numpy as np

    rng = np.random.default_rng(seed)
    return {
        "big": rng.standard_normal((rows, 128)),   # ≥ the shm threshold
        "small": rng.standard_normal(4),           # stays inline
        "meta": ("cell", seed),
    }


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(11, ("table7", 100)) == derive_seed(11, ("table7", 100))

    def test_spreads_over_base_and_key(self):
        seeds = {
            derive_seed(base, key)
            for base in (0, 1, 2)
            for key in (("a", 1), ("a", 2), ("b", 1))
        }
        assert len(seeds) == 9

    def test_in_range(self):
        for key in range(50):
            assert 0 <= derive_seed(7, key) < 2**31


class TestResolveWorkers:
    @pytest.mark.parametrize("value", [None, 0, 1])
    def test_serial_values(self, value):
        assert resolve_workers(value) == 1

    def test_all_cpus(self):
        assert resolve_workers(-1) >= 1

    def test_explicit(self):
        assert resolve_workers(3) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)

    def test_env_override_fills_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_env_override_all_cpus(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "-1")
        assert resolve_workers(None) >= 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "8")
        assert resolve_workers(2) == 2
        assert resolve_workers(0) == 1

    def test_env_junk_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_env_blank_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert resolve_workers(None) == 1


class TestRunJobs:
    def _jobs(self):
        return [
            Job(key=i, fn=_square, kwargs={"x": i}, seed=derive_seed(9, i))
            for i in range(6)
        ]

    def test_serial_results_in_job_order(self):
        results = run_jobs(self._jobs(), workers=None)
        assert list(results) == list(range(6))
        assert results[3] == (9, derive_seed(9, 3))

    def test_parallel_equals_serial(self):
        serial = run_jobs(self._jobs(), workers=1)
        parallel = run_jobs(self._jobs(), workers=2)
        assert serial == parallel
        assert list(serial) == list(parallel)

    def test_seed_not_injected_when_pinned(self):
        job = Job(key="k", fn=_square, kwargs={"x": 2, "seed": 123}, seed=456)
        assert job.run() == (4, 123)

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_jobs([Job(key="a", fn=_square, kwargs={"x": 1}),
                      Job(key="a", fn=_square, kwargs={"x": 2})])

    def test_job_exceptions_propagate(self):
        with pytest.raises(RuntimeError, match="boom"):
            run_jobs([Job(key=i, fn=_fail, kwargs={"message": "boom"})
                      for i in range(3)], workers=2)

    def test_unpicklable_jobs_fall_back_to_serial(self):
        jobs = [Job(key=i, fn=lambda x=i: x * 10, kwargs={}) for i in range(3)]
        with pytest.warns(RuntimeWarning, match="serially"):
            results = run_jobs(jobs, workers=2)
        assert results == {0: 0, 1: 10, 2: 20}

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise PermissionError("no process support in this sandbox")

        monkeypatch.setattr(runner_engine, "ProcessPoolExecutor", broken_pool)
        with pytest.warns(RuntimeWarning, match="pool unavailable"):
            results = run_jobs(self._jobs(), workers=4)
        assert results == run_jobs(self._jobs(), workers=None)

    def test_chunksize_results_identical(self):
        serial = run_jobs(self._jobs(), workers=1)
        chunked = run_jobs(self._jobs(), workers=2, chunksize=3)
        assert chunked == serial
        assert list(chunked) == list(serial)

    def test_chunksize_validated(self):
        with pytest.raises(ValueError, match="chunksize"):
            run_jobs(self._jobs(), workers=2, chunksize=0)


class TestJobPool:
    def _jobs(self, base=9):
        return [
            Job(key=i, fn=_square, kwargs={"x": i}, seed=derive_seed(base, i))
            for i in range(6)
        ]

    def test_serial_pool_matches_run_jobs(self):
        with JobPool(workers=None) as pool:
            assert pool.run(self._jobs()) == run_jobs(self._jobs())

    def test_pool_reused_across_rounds(self):
        with JobPool(workers=2) as pool:
            for round_index in range(3):
                results = pool.run(self._jobs(base=round_index))
                assert list(results) == list(range(6))
                assert results == run_jobs(self._jobs(base=round_index))

    def test_duplicate_keys_rejected(self):
        with JobPool(workers=None) as pool, pytest.raises(
            ValueError, match="duplicate"
        ):
            pool.run([Job(key="a", fn=_square, kwargs={"x": 1}),
                      Job(key="a", fn=_square, kwargs={"x": 2})])

    def test_unpicklable_jobs_stick_to_serial(self):
        pool = JobPool(workers=2)
        try:
            jobs = [
                Job(key=i, fn=lambda x=i: x * 10, kwargs={}) for i in range(3)
            ]
            with pytest.warns(RuntimeWarning, match="in-process"):
                assert pool.run(jobs) == {0: 0, 1: 10, 2: 20}
            # the fallback is sticky: later rounds stay in-process
            assert pool.run(self._jobs()) == run_jobs(self._jobs())
        finally:
            pool.close()

    def test_broken_pool_falls_back_and_sticks(self, monkeypatch):
        def broken_pool(*args, **kwargs):
            raise PermissionError("no process support in this sandbox")

        monkeypatch.setattr(runner_engine, "ProcessPoolExecutor", broken_pool)
        pool = JobPool(workers=4)
        try:
            with pytest.warns(RuntimeWarning, match="pool unavailable"):
                results = pool.run(self._jobs())
            assert results == run_jobs(self._jobs(), workers=None)
            monkeypatch.undo()
            # sticky: no new pool is attempted after the failure
            assert pool.run(self._jobs()) == run_jobs(self._jobs())
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = JobPool(workers=2)
        pool.run(self._jobs())
        pool.close()
        pool.close()


class TestSharedResults:
    """Large result arrays travel back via shared memory, value-identical."""

    def _jobs(self):
        return [
            Job(key=i, fn=_array_result, kwargs={"seed": i}) for i in range(4)
        ]

    def _assert_equal(self, left, right):
        import numpy as np

        assert list(left) == list(right)
        for key in left:
            assert np.array_equal(left[key]["big"], right[key]["big"])
            assert np.array_equal(left[key]["small"], right[key]["small"])
            assert left[key]["meta"] == right[key]["meta"]
            assert left[key]["big"].dtype == right[key]["big"].dtype

    def test_parallel_equals_serial(self):
        serial = run_jobs(self._jobs(), workers=1)
        parallel = run_jobs(self._jobs(), workers=2)  # auto shared results
        self._assert_equal(serial, parallel)

    def test_forced_inline_identical(self):
        serial = run_jobs(self._jobs(), workers=1)
        inline = run_jobs(self._jobs(), workers=2, shared_results=False)
        self._assert_equal(serial, inline)

    def test_export_falls_back_when_segments_unavailable(self, monkeypatch):
        import numpy as np

        def refuse(array, name=None):
            raise OSError("no shared memory here")

        monkeypatch.setattr(
            runner_engine.SharedArrayBlock, "create", staticmethod(refuse)
        )
        payload = _array_result(seed=3)
        exported = runner_engine._export_result(payload)
        assert np.array_equal(exported["big"], payload["big"])  # inline

    def test_export_roundtrip_structures(self):
        import numpy as np

        payload = {
            "tuple": (np.zeros((120, 120)), "x"),
            "list": [np.ones((120, 120))],
            "nested": {"deep": np.full((120, 120), 2.0)},
            "small": np.arange(3.0),
            "plain": 7,
        }
        restored = runner_engine._import_result(
            runner_engine._export_result(payload)
        )
        assert np.array_equal(restored["tuple"][0], payload["tuple"][0])
        assert restored["tuple"][1] == "x"
        assert np.array_equal(restored["list"][0], payload["list"][0])
        assert np.array_equal(restored["nested"]["deep"], payload["nested"]["deep"])
        assert restored["small"] is payload["small"]  # below threshold: untouched
        assert restored["plain"] == 7

    def test_failing_grid_raises_and_leaks_no_segments(self):
        import glob

        def segments():
            # Both naming schemes run_jobs segments can carry: the per-run
            # "rr<hex>_" result prefix and anonymous psm_* blocks.
            return set(glob.glob("/dev/shm/rr*")) | set(
                glob.glob("/dev/shm/psm_*")
            )

        before = segments()
        jobs = [Job(key=0, fn=_fail, kwargs={"message": "boom"})] + [
            Job(key=i, fn=_array_result, kwargs={"seed": i})
            for i in range(1, 4)
        ]
        with pytest.raises(RuntimeError, match="boom"):
            run_jobs(jobs, workers=2)
        # Every other job's shared-memory result was drained before the
        # re-raise — a failing cell must not strand /dev/shm segments.
        assert not segments() - before

    def test_export_handles_dataclasses(self):
        import numpy as np

        from repro.mrf.solvers import SolverResult

        result = (
            SolverResult(labels=[1, 2], energy=0.5),
            np.full((128, 128), 3.0),
        )
        restored = runner_engine._import_result(
            runner_engine._export_result(result)
        )
        assert restored[0].labels == [1, 2]
        assert np.array_equal(restored[1], result[1])


class TestSharedArrayBlock:
    def _block(self, array):
        from repro.runner import SharedArrayBlock

        try:
            return SharedArrayBlock.create(array)
        except OSError:
            pytest.skip("shared memory unavailable in this environment")

    def test_roundtrip_and_spec_pickles(self):
        import numpy as np
        import pickle

        from repro.runner import SharedArrayBlock

        source = np.arange(24.0).reshape(2, 3, 4)
        block = self._block(source)
        try:
            spec = pickle.loads(pickle.dumps(block.spec))
            view = SharedArrayBlock.attach(spec)
            got = view.array()
            assert got.shape == source.shape
            assert np.array_equal(got, source)
            assert not got.flags.writeable
            view.close()
        finally:
            block.unlink()

    def test_close_is_idempotent_and_guards_array(self):
        import numpy as np

        from repro.runner import SharedArrayBlock

        block = self._block(np.ones(3))
        spec = block.spec
        block.close()
        block.close()
        with pytest.raises(ValueError, match="closed"):
            block.array()
        # unlink after close still destroys the segment (no leak) ...
        block.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArrayBlock.attach(spec)
        block.unlink()  # ... and stays idempotent

    def test_context_manager_owner_unlinks(self):
        import numpy as np

        from repro.runner import SharedArrayBlock

        block = self._block(np.ones(2))
        spec = block.spec
        with block:
            pass
        with pytest.raises(FileNotFoundError):
            SharedArrayBlock.attach(spec)


class TestExperimentGrids:
    """Same seeds ⇒ identical table rows, serial vs parallel."""

    def test_table7_rows_parallel_identical(self):
        kwargs = dict(host_counts=(20, 30), densities=(("mini", 4, 2),),
                      seed=1, max_iterations=2)
        serial = experiments.table7_rows(**kwargs)
        parallel = experiments.table7_rows(workers=2, **kwargs)
        assert list(serial) == list(parallel)
        for key in serial:
            assert serial[key].config == parallel[key].config
            assert serial[key].energy == parallel[key].energy
            assert serial[key].edges == parallel[key].edges

    def test_table8_and_table9_accept_workers(self):
        rows8 = experiments.table8_rows(degrees=(3,), scales=(("mini", 24, 2),),
                                        workers=2, max_iterations=2)
        rows9 = experiments.table9_rows(service_counts=(2,),
                                        scales=(("mini", 24, 3),),
                                        workers=2, max_iterations=2)
        assert set(rows8) == {("mini", 3)}
        assert set(rows9) == {("mini", 2)}

    def test_scalability_sweep_keys_ordered(self):
        from repro.network.generator import RandomNetworkConfig

        configs = {
            ("a", hosts): RandomNetworkConfig(hosts=hosts, degree=3,
                                              services=2, seed=0)
            for hosts in (16, 20, 24)
        }
        rows = experiments.scalability_sweep(configs, workers=2,
                                             max_iterations=2)
        assert list(rows) == list(configs)

    def test_perturbation_rows_byte_identical(self):
        network = ring_network(8, services={"svc": ["p0", "p1", "p2"]})
        table = SimilarityTable(
            pairs={("p0", "p1"): 0.6, ("p1", "p2"): 0.2, ("p0", "p2"): 0.4}
        )
        kwargs = dict(noise_levels=(0.1, 0.3), seeds=(0, 1))
        serial = similarity_perturbation_sensitivity(network, table, **kwargs)
        parallel = similarity_perturbation_sensitivity(network, table,
                                                       workers=2, **kwargs)
        assert [r.row() for r in serial] == [r.row() for r in parallel]

    def test_calibration_cells_parallel_identical(self):
        kwargs = dict(p_avgs=(0.1,), p_maxs=(0.2, 0.3))
        serial = calibration_sensitivity(**kwargs)
        parallel = calibration_sensitivity(workers=2, **kwargs)
        assert [c.row() for c in serial] == [c.row() for c in parallel]

    def test_duplicate_grid_values_yield_one_row_each(self):
        # Repeated user-supplied grid values must behave like the original
        # loops (one row per occurrence), not collide as runner job keys.
        network = ring_network(6, services={"svc": ["p0", "p1"]})
        table = SimilarityTable(pairs={("p0", "p1"): 0.5})
        rows = similarity_perturbation_sensitivity(
            network, table, noise_levels=(0.2,), seeds=(0, 0)
        )
        assert len(rows) == 2
        assert rows[0].row() == rows[1].row()
