"""Tests for the baseline solvers: loopy BP, ICM and brute force."""

import numpy as np
import pytest

from repro.mrf.bp import LoopyBPSolver
from repro.mrf.exact import ExactSolver
from repro.mrf.graph import MRFError, PairwiseMRF
from repro.mrf.icm import ICMSolver

from helpers import make_random_mrf


class TestExactSolver:
    def test_small_instance(self):
        mrf = make_random_mrf(nodes=5, edge_probability=0.5, max_labels=3, seed=0)
        result = ExactSolver().solve(mrf)
        assert result.energy == pytest.approx(mrf.energy(result.labels))
        assert result.converged and result.is_certified_optimal()

    def test_space_cap_enforced(self):
        mrf = PairwiseMRF()
        for _ in range(30):
            mrf.add_node([0.0, 1.0, 2.0])
        with pytest.raises(MRFError):
            ExactSolver(max_space=1000).solve(mrf)

    def test_empty(self):
        result = ExactSolver().solve(PairwiseMRF())
        assert result.labels == [] and result.converged


class TestLoopyBP:
    def test_exact_on_tree(self):
        mrf = make_random_mrf(nodes=7, edge_probability=0.0, max_labels=3,
                              seed=3, tree=True)
        exact = ExactSolver().solve(mrf)
        result = LoopyBPSolver(max_iterations=100, damping=0.0).solve(mrf)
        assert result.energy == pytest.approx(exact.energy, abs=1e-9)

    @pytest.mark.parametrize("seed", range(5))
    def test_never_beats_exact(self, seed):
        mrf = make_random_mrf(nodes=6, edge_probability=0.5, max_labels=3, seed=seed)
        exact = ExactSolver().solve(mrf)
        result = LoopyBPSolver(max_iterations=80).solve(mrf)
        assert result.energy >= exact.energy - 1e-9

    def test_damping_validation(self):
        with pytest.raises(ValueError):
            LoopyBPSolver(damping=1.0)
        with pytest.raises(ValueError):
            LoopyBPSolver(damping=-0.1)

    def test_iteration_validation(self):
        with pytest.raises(ValueError):
            LoopyBPSolver(max_iterations=0)

    def test_empty(self):
        result = LoopyBPSolver().solve(PairwiseMRF())
        assert result.labels == [] and result.converged

    def test_converges_on_chain(self):
        mrf = PairwiseMRF()
        nodes = [mrf.add_node([0.0, 0.5]) for _ in range(4)]
        for a, b in zip(nodes, nodes[1:]):
            mrf.add_edge(a, b, np.eye(2))
        result = LoopyBPSolver(max_iterations=100, damping=0.0).solve(mrf)
        assert result.converged


class TestICM:
    def test_local_optimum_property(self):
        """At an ICM fixed point, no single-node flip improves the energy."""
        mrf = make_random_mrf(nodes=8, edge_probability=0.4, max_labels=3, seed=4)
        result = ICMSolver(max_iterations=100).solve(mrf)
        assert result.converged
        base = result.energy
        for node in range(mrf.node_count):
            for label in range(mrf.label_count(node)):
                flipped = list(result.labels)
                flipped[node] = label
                assert mrf.energy(flipped) >= base - 1e-9

    def test_never_beats_exact(self):
        mrf = make_random_mrf(nodes=6, edge_probability=0.5, max_labels=3, seed=9)
        exact = ExactSolver().solve(mrf)
        result = ICMSolver().solve(mrf)
        assert result.energy >= exact.energy - 1e-9

    def test_explicit_initialisation(self):
        mrf = make_random_mrf(nodes=4, edge_probability=0.5, max_labels=2, seed=2)
        result = ICMSolver(initial=[0, 0, 0, 0]).solve(mrf)
        assert result.converged

    def test_random_initialisation_is_seeded(self):
        mrf = make_random_mrf(nodes=6, edge_probability=0.4, max_labels=3, seed=2)
        a = ICMSolver(initial="random", seed=1).solve(mrf)
        b = ICMSolver(initial="random", seed=1).solve(mrf)
        assert a.labels == b.labels

    def test_wrong_initial_length_rejected(self):
        mrf = make_random_mrf(nodes=4, edge_probability=0.5, max_labels=2, seed=2)
        with pytest.raises(ValueError):
            ICMSolver(initial=[0, 0]).solve(mrf)

    def test_empty(self):
        result = ICMSolver().solve(PairwiseMRF())
        assert result.labels == [] and result.converged


class TestBPSolveArrays:
    def test_cold_solve_arrays_matches_solve(self):
        from repro.mrf.vectorized import MRFArrays

        mrf = make_random_mrf(nodes=8, edge_probability=0.6, max_labels=3, seed=2)
        solver = LoopyBPSolver(max_iterations=30)
        direct = solver.solve(mrf)
        via_plan = solver.solve_arrays(MRFArrays(mrf))
        assert via_plan.labels == direct.labels
        assert via_plan.energy == pytest.approx(direct.energy, abs=1e-9)

    def test_warm_start_converges_fast(self):
        from repro.mrf.vectorized import MRFArrays

        mrf = make_random_mrf(nodes=8, edge_probability=0.6, max_labels=3, seed=3)
        plan = MRFArrays(mrf)
        solver = LoopyBPSolver(max_iterations=50)
        messages = plan.zero_messages()
        first = solver.solve_arrays(plan, messages=messages)
        assert first.converged
        warm = solver.solve_arrays(plan, messages=messages)
        # Restarting at the fixed point converges immediately.
        assert warm.iterations <= 2
        assert warm.energy == pytest.approx(first.energy, abs=1e-9)
