"""Tests for similarity persistence and CVSS weighting (repro.nvd.io)."""

import pytest

from repro.nvd.cpe import CPE
from repro.nvd.cve import CVERecord
from repro.nvd.database import VulnerabilityDatabase
from repro.nvd.datasets import paper_os_similarity
from repro.nvd.io import (
    dumps_similarity,
    load_similarity,
    loads_similarity,
    save_similarity,
    similarity_from_csv,
    similarity_to_csv,
    weighted_similarity_table_from_database,
)
from repro.nvd.similarity import SimilarityTable, similarity_table_from_database


class TestJsonRoundTrip:
    def test_round_trip_paper_table(self):
        table = paper_os_similarity()
        clone = loads_similarity(dumps_similarity(table))
        assert clone.products == table.products
        for a in table.products:
            for b in table.products:
                assert clone.get(a, b) == table.get(a, b)
        assert clone.vulnerability_counts == table.vulnerability_counts
        assert clone.shared_counts == table.shared_counts

    def test_file_round_trip(self, tmp_path):
        table = SimilarityTable(pairs={("a", "b"): 0.3})
        path = tmp_path / "table.json"
        save_similarity(table, path)
        clone = load_similarity(path)
        assert clone.get("a", "b") == 0.3

    def test_empty_table(self):
        clone = loads_similarity(dumps_similarity(SimilarityTable()))
        assert clone.products == []


class TestCsv:
    def test_round_trip(self):
        table = SimilarityTable(
            products=["a", "b", "c"], pairs={("a", "b"): 0.25, ("b", "c"): 0.5}
        )
        clone = similarity_from_csv(similarity_to_csv(table))
        for x in table.products:
            for y in table.products:
                assert clone.get(x, y) == pytest.approx(table.get(x, y))

    def test_missing_header_rejected(self):
        with pytest.raises(ValueError):
            similarity_from_csv("x,y\n1,2\n")

    def test_asymmetric_rejected(self):
        text = "product,a,b\na,1,0.3\nb,0.4,1\n"
        with pytest.raises(ValueError):
            similarity_from_csv(text)

    def test_bad_diagonal_rejected(self):
        text = "product,a,b\na,0.9,0.3\nb,0.3,1\n"
        with pytest.raises(ValueError):
            similarity_from_csv(text)

    def test_malformed_row_rejected(self):
        text = "product,a,b\na,1\n"
        with pytest.raises(ValueError):
            similarity_from_csv(text)


class TestWeightedSimilarity:
    @pytest.fixture
    def db(self):
        chrome = CPE.parse("cpe:/a:google:chrome")
        firefox = CPE.parse("cpe:/a:mozilla:firefox")
        database = VulnerabilityDatabase()
        # One critical shared CVE, several trivial unshared ones.
        database.add(CVERecord.build(2015, 1, [chrome, firefox], cvss=10.0))
        database.add(CVERecord.build(2015, 2, [chrome], cvss=1.0))
        database.add(CVERecord.build(2015, 3, [chrome], cvss=1.0))
        database.add(CVERecord.build(2015, 4, [firefox], cvss=1.0))
        return database, {"Chrome": chrome, "Firefox": firefox}

    def test_unit_weight_equals_jaccard(self, db):
        database, mapping = db
        weighted = weighted_similarity_table_from_database(
            database, mapping, weight=lambda record: 1.0
        )
        plain = similarity_table_from_database(database, mapping)
        assert weighted.get("Chrome", "Firefox") == pytest.approx(
            plain.get("Chrome", "Firefox")
        )

    def test_cvss_weighting_boosts_critical_overlap(self, db):
        database, mapping = db
        weighted = weighted_similarity_table_from_database(database, mapping)
        plain = similarity_table_from_database(database, mapping)
        # shared: one CVSS-10 CVE; unshared: three CVSS-1 CVEs.
        assert weighted.get("Chrome", "Firefox") == pytest.approx(10 / 13)
        assert weighted.get("Chrome", "Firefox") > plain.get("Chrome", "Firefox")

    def test_negative_weight_rejected(self, db):
        database, mapping = db
        with pytest.raises(ValueError):
            weighted_similarity_table_from_database(
                database, mapping, weight=lambda record: -1.0
            )

    def test_counts_preserved(self, db):
        database, mapping = db
        weighted = weighted_similarity_table_from_database(database, mapping)
        assert weighted.vulnerability_counts == {"Chrome": 3, "Firefox": 2}
        assert weighted.shared_counts[("Chrome", "Firefox")] == 1
