"""Tests for the shard layer's partitioning (repro.mrf.partition)."""

import numpy as np
import pytest

from repro.core.costs import build_mrf
from repro.mrf.batched import replicated_problem_from_network
from repro.mrf.partition import (
    balanced_blocks,
    cut_parts,
    split_components,
    split_parts,
    split_replicated,
    zone_groups,
)
from repro.mrf.vectorized import MRFArrays
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.zones import Zone, ZonedNetwork


def workload(hosts=30, degree=2, services=3, pps=6, seed=0):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        products_per_service=pps, seed=seed,
    )
    return random_network(config), random_similarity(config)


def plan_for(net, table):
    return MRFArrays(build_mrf(net, table).mrf)


def connected_plan(hosts=24, seed=0):
    """A plan over one connected host graph — guarantees cut edges."""
    import random

    from repro.network.topologies import scale_free_network
    from repro.nvd.similarity import SimilarityTable

    spec = {"os": ("os_a", "os_b", "os_c"), "db": ("db_a", "db_b", "db_c")}
    net = scale_free_network(hosts, attach=2, seed=seed, services=spec)
    rng = random.Random(seed + 1)
    table = SimilarityTable()
    for products in spec.values():
        for product in products:
            table.add_product(product)
        for i, a in enumerate(products):
            for b in products[i + 1:]:
                table.set(a, b, round(rng.uniform(0.1, 0.9), 3))
    return plan_for(net, table)


def zoned_workload(zones=3, hosts_per_zone=6, products=4):
    """Air-gapped multi-zone network: each zone is its own component."""
    zone_objs = [
        Zone(
            f"zone{k}",
            tuple(f"z{k}h{i}" for i in range(hosts_per_zone)),
            topology="ring",
        )
        for k in range(zones)
    ]
    zoned = ZonedNetwork(zone_objs, rules=[])
    spec = {
        "os": tuple(f"os_p{j}" for j in range(products)),
        "db": tuple(f"db_p{j}" for j in range(products)),
    }
    catalog = {host: spec for host in zoned.hosts()}
    network = zoned.build_network(catalog)
    import random

    rng = random.Random(7)
    from repro.nvd.similarity import SimilarityTable

    table = SimilarityTable()
    for service_products in spec.values():
        for product in service_products:
            table.add_product(product)
        for i, a in enumerate(service_products):
            for b in service_products[i + 1 :]:
                table.set(a, b, round(rng.uniform(0.05, 0.8), 3))
    return zoned, network, table


class TestSplitComponents:
    def test_shards_are_connected_components(self):
        net, table = workload()
        build = build_mrf(net, table)
        plan = MRFArrays(build.mrf)
        partition = split_components(plan)
        expected = build.mrf.connected_components()
        assert len(partition) == len(expected)
        got = sorted(sorted(int(i) for i in s.nodes) for s in partition)
        assert got == sorted(expected)

    def test_node_edge_maps_cover_plan(self):
        net, table = workload(seed=1)
        plan = plan_for(net, table)
        partition = split_components(plan)
        all_nodes = np.sort(np.concatenate([s.nodes for s in partition]))
        all_edges = np.sort(np.concatenate([s.edges for s in partition]))
        assert np.array_equal(all_nodes, np.arange(plan.node_count))
        assert np.array_equal(all_edges, np.arange(plan.edge_count))
        for shard in partition:
            # Shard plans share the parent's padding.
            assert shard.plan.lmax == plan.lmax
            assert shard.plan.node_count == len(shard.nodes)
            assert shard.plan.edge_count == len(shard.edges)

    def test_stitch_energy_equals_global_energy(self):
        net, table = workload(seed=2)
        plan = plan_for(net, table)
        partition = split_components(plan)
        rng = np.random.default_rng(0)
        labels = rng.integers(0, plan.label_counts)
        total = sum(
            shard.plan.energy(labels[shard.nodes]) for shard in partition
        )
        assert total == pytest.approx(plan.energy(labels), abs=1e-9)
        stitched = partition.stitch(
            [labels[shard.nodes] for shard in partition]
        )
        assert np.array_equal(stitched, labels)

    def test_message_split_scatter_roundtrip(self):
        net, table = workload(seed=3)
        plan = plan_for(net, table)
        partition = split_components(plan)
        rng = np.random.default_rng(1)
        messages = rng.normal(size=(2 * plan.edge_count, plan.lmax))
        pieces = partition.split_messages(messages)
        assert sum(len(p) for p in pieces) == len(messages)
        restored = np.zeros_like(messages)
        partition.scatter_messages(pieces, restored)
        assert np.array_equal(restored, messages)

    def test_min_nodes_packs_small_components(self):
        net, table = workload(seed=4)
        plan = plan_for(net, table)
        fine = split_components(plan)
        assert len(fine) > 1
        coarse = split_components(plan, min_nodes=plan.node_count)
        assert len(coarse) == 1
        assert coarse.shards[0].plan.node_count == plan.node_count
        # Packing preserves exactness.
        rng = np.random.default_rng(2)
        labels = rng.integers(0, plan.label_counts)
        assert coarse.shards[0].plan.energy(labels) == pytest.approx(
            plan.energy(labels), abs=1e-9
        )

    def test_shard_plans_built_lazily(self):
        # The sharded streaming engine partitions every solve but only
        # touches dirty shards' plans; clean shards must stay unbuilt.
        net, table = workload(seed=5)
        plan = plan_for(net, table)
        partition = split_components(plan)
        assert all(shard._plan is None for shard in partition)
        first = partition.shards[0].plan
        assert partition.shards[0]._plan is first  # cached
        assert all(shard._plan is None for shard in partition.shards[1:])

    def test_invalid_min_nodes(self):
        net, table = workload(seed=4)
        plan = plan_for(net, table)
        with pytest.raises(ValueError):
            split_components(plan, min_nodes=0)

    def test_empty_plan(self):
        partition = split_parts([], np.zeros(0), np.zeros(0), np.zeros(0), [])
        assert len(partition) == 0
        assert partition.stitch([]).shape == (0,)

    def test_isolated_nodes_become_singleton_shards(self):
        partition = split_parts(
            [np.zeros(2), np.zeros(3)], np.zeros(0), np.zeros(0),
            np.zeros(0), [],
        )
        assert len(partition) == 2
        assert [list(s.nodes) for s in partition] == [[0], [1]]


class TestZoneGroups:
    def test_zone_grouping_merges_per_service_components(self):
        zoned, network, table = zoned_workload(zones=3)
        build = build_mrf(network, table)
        plan = MRFArrays(build.mrf)
        fine = split_components(plan)
        # Two services per zone → two components per zone.
        assert len(fine) == 6
        groups = zone_groups(build.variables, zoned)
        grouped = split_components(plan, groups=groups)
        assert len(grouped) == 3
        # Each grouped shard holds exactly one zone's variables.
        for shard in grouped:
            hosts = {build.variables[int(i)][0] for i in shard.nodes}
            zones = {zoned.zone_of(h) for h in hosts}
            assert len(zones) == 1

    def test_unknown_hosts_stay_unconstrained(self):
        zoned, network, table = zoned_workload(zones=2)
        groups = zone_groups([("nowhere", "os"), ("z0h0", "os")], zoned)
        assert groups[0] is None
        assert groups[1] is not None


class TestSplitReplicated:
    def test_components_and_energy_parity(self):
        zoned, network, table = zoned_workload(zones=3)
        problem = replicated_problem_from_network(network, table)
        assert problem is not None
        partition = split_replicated(problem)
        assert len(partition) == 3  # host graph: one component per zone
        rng = np.random.default_rng(3)
        labels = rng.integers(
            0, problem.label_count,
            size=(problem.host_count, len(problem.services)),
        )
        total = sum(
            shard.problem.energy(labels[shard.hosts]) for shard in partition
        )
        assert total == pytest.approx(problem.energy(labels), abs=1e-9)
        stitched = partition.stitch(
            [labels[shard.hosts] for shard in partition]
        )
        assert np.array_equal(stitched, labels)

    def test_costs_shared_by_reference(self):
        zoned, network, table = zoned_workload(zones=2)
        problem = replicated_problem_from_network(network, table)
        partition = split_replicated(problem)
        for shard in partition:
            assert shard.problem.costs is problem.costs


class TestStitchValidation:
    """Regression: degenerate partitions must round-trip, not truncate.

    ``stitch`` used to ``zip`` shards with labellings, so a missing entry
    (typically a dropped single-node zero-edge shard, the degenerate
    product of an edge cut) silently became zeros in the stitched result.
    """

    def _singleton_partition(self):
        # Two isolated nodes + one edgeless pair: all shards are tiny.
        return split_parts(
            [np.zeros(2), np.zeros(3), np.zeros(2)],
            np.zeros(0), np.zeros(0), np.zeros(0), [],
        )

    def test_single_node_zero_edge_shards_round_trip(self):
        partition = self._singleton_partition()
        assert [len(s.nodes) for s in partition] == [1, 1, 1]
        for shard in partition:
            assert len(shard.edges) == 0
            assert shard.plan.node_count == 1
            assert shard.plan.edge_count == 0
        stitched = partition.stitch([[1], [2], [0]])
        assert stitched.tolist() == [1, 2, 0]

    def test_scalar_labelling_accepted_for_single_node_shard(self):
        # Exact solvers naturally collapse a 1-node shard to a scalar.
        partition = self._singleton_partition()
        stitched = partition.stitch([np.int64(1), 2, [0]])
        assert stitched.tolist() == [1, 2, 0]

    def test_missing_shard_entry_raises(self):
        partition = self._singleton_partition()
        with pytest.raises(ValueError, match="expected 3 shard labellings"):
            partition.stitch([[1], [2]])

    def test_wrong_length_labelling_raises(self):
        partition = self._singleton_partition()
        with pytest.raises(ValueError, match="shard 1 has 1 node"):
            partition.stitch([[1], [2, 2], [0]])


class TestBalancedBlocks:
    def test_chain_split_is_contiguous(self):
        blocks = balanced_blocks(6, [0, 1, 2, 3, 4], [1, 2, 3, 4, 5], 3)
        assert blocks.tolist() == [0, 0, 1, 1, 2, 2]

    def test_parts_clamped_and_blocks_nonempty(self):
        blocks = balanced_blocks(3, [0], [1], 10)
        assert sorted(set(blocks.tolist())) == [0, 1, 2]
        assert balanced_blocks(0, [], [], 4).shape == (0,)
        assert balanced_blocks(5, [], [], 1).tolist() == [0] * 5

    def test_balance_within_one_node(self):
        net, table = workload(hosts=29, seed=6)
        plan = plan_for(net, table)
        blocks = balanced_blocks(
            plan.node_count, plan.edge_first, plan.edge_second, 4
        )
        sizes = np.bincount(blocks)
        assert sizes.max() - sizes.min() <= 1


class TestCutParts:
    def _plan_and_cut(self, seed=0, parts=3):
        plan = connected_plan(seed=seed)
        partition = cut_parts(
            plan.unary_vectors(), plan.edge_first, plan.edge_second,
            plan.edge_cid, plan.matrix_stack(), lmax=plan.lmax, parts=parts,
        )
        return plan, partition

    def test_every_edge_owned_exactly_once(self):
        plan, partition = self._plan_and_cut()
        owned = np.sort(np.concatenate([s.edges for s in partition]))
        assert np.array_equal(owned, np.arange(plan.edge_count))

    def test_home_copies_cover_every_node_once(self):
        plan, partition = self._plan_and_cut(seed=1)
        homes = np.sort(
            np.concatenate([s.nodes[s.home] for s in partition])
        )
        assert np.array_equal(homes, np.arange(plan.node_count))

    def test_boundary_copies_match_ghosts(self):
        plan, partition = self._plan_and_cut(seed=2)
        assert len(partition.cut_edges) > 0
        for entry in partition.boundary:
            assert len(entry.copies) >= 2
            home_shard, home_local = entry.copies[0]
            assert partition.block[entry.node] == home_shard
            for shard_index, local in entry.copies:
                shard = partition.shards[shard_index]
                assert int(shard.nodes[local]) == entry.node

    def test_consistent_labelling_preserves_energy(self):
        # Shard energies (split unaries + owned edges) sum exactly to the
        # global energy whenever all copies agree — the dual invariant.
        plan, partition = self._plan_and_cut(seed=3)
        rng = np.random.default_rng(4)
        labels = rng.integers(0, plan.label_counts)
        total = sum(
            shard.plan.energy(labels[shard.nodes]) for shard in partition
        )
        assert total == pytest.approx(plan.energy(labels), abs=1e-9)

    def test_stitch_reads_home_copies_only(self):
        plan, partition = self._plan_and_cut(seed=5)
        rng = np.random.default_rng(6)
        labels = rng.integers(0, plan.label_counts)
        per_shard = []
        for shard in partition:
            sub = labels[shard.nodes].copy()
            sub[~shard.home] = 0  # corrupt ghosts; stitch must ignore them
            per_shard.append(sub)
        assert np.array_equal(partition.stitch(per_shard), labels)

    def test_disagreements_track_boundary_labels(self):
        plan, partition = self._plan_and_cut(seed=7)
        agree = [np.zeros(len(s.nodes), dtype=np.int64) for s in partition]
        assert partition.disagreements(agree) == []
        entry = partition.boundary[0]
        shard_index, local = entry.copies[-1]
        agree[shard_index][local] = 1
        assert [e.node for e in partition.disagreements(agree)] == [
            entry.node
        ]

    def test_degenerate_cut_single_node_shards(self):
        # parts == node count: every shard is one home node (plus ghosts),
        # and blocks with zero edges round-trip through stitch.
        unaries = [np.zeros(2) for _ in range(4)]
        repel = np.eye(2)
        partition = cut_parts(
            unaries, np.array([0, 1, 2]), np.array([1, 2, 3]),
            np.array([0, 0, 0]), [repel], parts=4,
        )
        assert len(partition) == 4
        assert len(partition.shards[3].edges) == 0  # h3 owns no edge
        assert partition.shards[3].plan.edge_count == 0
        labels = partition.stitch(
            [s.nodes * 0 + i for i, s in enumerate(partition)]
        )
        assert labels.tolist() == [0, 1, 2, 3]

    def test_caller_blocks_relabelled_densely(self):
        unaries = [np.zeros(2) for _ in range(4)]
        partition = cut_parts(
            unaries, np.array([0, 2]), np.array([1, 3]), np.array([0, 0]),
            [np.eye(2)], blocks=[5, 5, 9, 9],
        )
        assert len(partition) == 2
        assert partition.block.tolist() == [0, 0, 1, 1]
        with pytest.raises(ValueError, match="blocks must assign"):
            cut_parts(
                unaries, np.array([0]), np.array([1]), np.array([0]),
                [np.eye(2)], blocks=[0, 1],
            )

    def test_empty_plan(self):
        partition = cut_parts([], np.zeros(0), np.zeros(0), np.zeros(0), [])
        assert len(partition) == 0
        assert partition.stitch([]).shape == (0,)
