"""Tests for the shard layer's partitioning (repro.mrf.partition)."""

import numpy as np
import pytest

from repro.core.costs import build_mrf
from repro.mrf.batched import replicated_problem_from_network
from repro.mrf.partition import (
    split_components,
    split_parts,
    split_replicated,
    zone_groups,
)
from repro.mrf.vectorized import MRFArrays
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.network.zones import Zone, ZonedNetwork


def workload(hosts=30, degree=2, services=3, pps=6, seed=0):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        products_per_service=pps, seed=seed,
    )
    return random_network(config), random_similarity(config)


def plan_for(net, table):
    return MRFArrays(build_mrf(net, table).mrf)


def zoned_workload(zones=3, hosts_per_zone=6, products=4):
    """Air-gapped multi-zone network: each zone is its own component."""
    zone_objs = [
        Zone(
            f"zone{k}",
            tuple(f"z{k}h{i}" for i in range(hosts_per_zone)),
            topology="ring",
        )
        for k in range(zones)
    ]
    zoned = ZonedNetwork(zone_objs, rules=[])
    spec = {
        "os": tuple(f"os_p{j}" for j in range(products)),
        "db": tuple(f"db_p{j}" for j in range(products)),
    }
    catalog = {host: spec for host in zoned.hosts()}
    network = zoned.build_network(catalog)
    import random

    rng = random.Random(7)
    from repro.nvd.similarity import SimilarityTable

    table = SimilarityTable()
    for service_products in spec.values():
        for product in service_products:
            table.add_product(product)
        for i, a in enumerate(service_products):
            for b in service_products[i + 1 :]:
                table.set(a, b, round(rng.uniform(0.05, 0.8), 3))
    return zoned, network, table


class TestSplitComponents:
    def test_shards_are_connected_components(self):
        net, table = workload()
        build = build_mrf(net, table)
        plan = MRFArrays(build.mrf)
        partition = split_components(plan)
        expected = build.mrf.connected_components()
        assert len(partition) == len(expected)
        got = sorted(sorted(int(i) for i in s.nodes) for s in partition)
        assert got == sorted(expected)

    def test_node_edge_maps_cover_plan(self):
        net, table = workload(seed=1)
        plan = plan_for(net, table)
        partition = split_components(plan)
        all_nodes = np.sort(np.concatenate([s.nodes for s in partition]))
        all_edges = np.sort(np.concatenate([s.edges for s in partition]))
        assert np.array_equal(all_nodes, np.arange(plan.node_count))
        assert np.array_equal(all_edges, np.arange(plan.edge_count))
        for shard in partition:
            # Shard plans share the parent's padding.
            assert shard.plan.lmax == plan.lmax
            assert shard.plan.node_count == len(shard.nodes)
            assert shard.plan.edge_count == len(shard.edges)

    def test_stitch_energy_equals_global_energy(self):
        net, table = workload(seed=2)
        plan = plan_for(net, table)
        partition = split_components(plan)
        rng = np.random.default_rng(0)
        labels = rng.integers(0, plan.label_counts)
        total = sum(
            shard.plan.energy(labels[shard.nodes]) for shard in partition
        )
        assert total == pytest.approx(plan.energy(labels), abs=1e-9)
        stitched = partition.stitch(
            [labels[shard.nodes] for shard in partition]
        )
        assert np.array_equal(stitched, labels)

    def test_message_split_scatter_roundtrip(self):
        net, table = workload(seed=3)
        plan = plan_for(net, table)
        partition = split_components(plan)
        rng = np.random.default_rng(1)
        messages = rng.normal(size=(2 * plan.edge_count, plan.lmax))
        pieces = partition.split_messages(messages)
        assert sum(len(p) for p in pieces) == len(messages)
        restored = np.zeros_like(messages)
        partition.scatter_messages(pieces, restored)
        assert np.array_equal(restored, messages)

    def test_min_nodes_packs_small_components(self):
        net, table = workload(seed=4)
        plan = plan_for(net, table)
        fine = split_components(plan)
        assert len(fine) > 1
        coarse = split_components(plan, min_nodes=plan.node_count)
        assert len(coarse) == 1
        assert coarse.shards[0].plan.node_count == plan.node_count
        # Packing preserves exactness.
        rng = np.random.default_rng(2)
        labels = rng.integers(0, plan.label_counts)
        assert coarse.shards[0].plan.energy(labels) == pytest.approx(
            plan.energy(labels), abs=1e-9
        )

    def test_shard_plans_built_lazily(self):
        # The sharded streaming engine partitions every solve but only
        # touches dirty shards' plans; clean shards must stay unbuilt.
        net, table = workload(seed=5)
        plan = plan_for(net, table)
        partition = split_components(plan)
        assert all(shard._plan is None for shard in partition)
        first = partition.shards[0].plan
        assert partition.shards[0]._plan is first  # cached
        assert all(shard._plan is None for shard in partition.shards[1:])

    def test_invalid_min_nodes(self):
        net, table = workload(seed=4)
        plan = plan_for(net, table)
        with pytest.raises(ValueError):
            split_components(plan, min_nodes=0)

    def test_empty_plan(self):
        partition = split_parts([], np.zeros(0), np.zeros(0), np.zeros(0), [])
        assert len(partition) == 0
        assert partition.stitch([]).shape == (0,)

    def test_isolated_nodes_become_singleton_shards(self):
        partition = split_parts(
            [np.zeros(2), np.zeros(3)], np.zeros(0), np.zeros(0),
            np.zeros(0), [],
        )
        assert len(partition) == 2
        assert [list(s.nodes) for s in partition] == [[0], [1]]


class TestZoneGroups:
    def test_zone_grouping_merges_per_service_components(self):
        zoned, network, table = zoned_workload(zones=3)
        build = build_mrf(network, table)
        plan = MRFArrays(build.mrf)
        fine = split_components(plan)
        # Two services per zone → two components per zone.
        assert len(fine) == 6
        groups = zone_groups(build.variables, zoned)
        grouped = split_components(plan, groups=groups)
        assert len(grouped) == 3
        # Each grouped shard holds exactly one zone's variables.
        for shard in grouped:
            hosts = {build.variables[int(i)][0] for i in shard.nodes}
            zones = {zoned.zone_of(h) for h in hosts}
            assert len(zones) == 1

    def test_unknown_hosts_stay_unconstrained(self):
        zoned, network, table = zoned_workload(zones=2)
        groups = zone_groups([("nowhere", "os"), ("z0h0", "os")], zoned)
        assert groups[0] is None
        assert groups[1] is not None


class TestSplitReplicated:
    def test_components_and_energy_parity(self):
        zoned, network, table = zoned_workload(zones=3)
        problem = replicated_problem_from_network(network, table)
        assert problem is not None
        partition = split_replicated(problem)
        assert len(partition) == 3  # host graph: one component per zone
        rng = np.random.default_rng(3)
        labels = rng.integers(
            0, problem.label_count,
            size=(problem.host_count, len(problem.services)),
        )
        total = sum(
            shard.problem.energy(labels[shard.hosts]) for shard in partition
        )
        assert total == pytest.approx(problem.energy(labels), abs=1e-9)
        stitched = partition.stitch(
            [labels[shard.hosts] for shard in partition]
        )
        assert np.array_equal(stitched, labels)

    def test_costs_shared_by_reference(self):
        zoned, network, table = zoned_workload(zones=2)
        problem = replicated_problem_from_network(network, table)
        partition = split_replicated(problem)
        for shard in partition:
            assert shard.problem.costs is problem.costs
