"""Tests for the BENCH trend-report script (benchmarks/bench_report.py)."""

import importlib.util
import json
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "bench_report",
    Path(__file__).resolve().parents[1] / "benchmarks" / "bench_report.py",
)
bench_report = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_report)


def write_record(directory: Path, name: str, seconds: float, schema: int = 1):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"schema": schema, "bench": name, "seconds": seconds, "extra": {}}
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestLoadRecords:
    def test_loads_and_keys_by_bench(self, tmp_path):
        write_record(tmp_path, "alpha", 1.0)
        write_record(tmp_path, "beta", 2.0)
        records = bench_report.load_records(tmp_path)
        assert sorted(records) == ["alpha", "beta"]
        assert records["alpha"]["seconds"] == 1.0

    def test_skips_unknown_schema(self, tmp_path, capsys):
        write_record(tmp_path, "old", 1.0, schema=99)
        assert bench_report.load_records(tmp_path) == {}

    def test_skips_corrupt_json(self, tmp_path):
        (tmp_path / "BENCH_bad.json").write_text("{not json")
        assert bench_report.load_records(tmp_path) == {}


class TestFormatReport:
    def test_current_only_listing(self, tmp_path):
        current = {"a": {"bench": "a", "seconds": 0.5}}
        text, regressions = bench_report.format_report(current)
        assert "0.5000" in text
        assert regressions == 0

    def test_diff_flags_regression(self):
        baseline = {"a": {"bench": "a", "seconds": 1.0}}
        current = {"a": {"bench": "a", "seconds": 2.0}}
        text, regressions = bench_report.format_report(
            current, baseline, fail_threshold=1.5
        )
        assert "REGRESSED" in text
        assert regressions == 1

    def test_diff_reports_speedup_and_new_missing(self):
        baseline = {
            "fast": {"bench": "fast", "seconds": 2.0},
            "gone": {"bench": "gone", "seconds": 1.0},
        }
        current = {
            "fast": {"bench": "fast", "seconds": 1.0},
            "fresh": {"bench": "fresh", "seconds": 3.0},
        }
        text, regressions = bench_report.format_report(current, baseline, 1.5)
        assert "2.00x faster" in text
        assert "new" in text
        assert "missing" in text
        assert regressions == 0

    def test_backend_field_rendered(self):
        current = {
            "k": {
                "bench": "k", "seconds": 0.5,
                "extra": {"backend": "native (cc)"},
            }
        }
        text, _ = bench_report.format_report(current)
        assert "[native (cc)]" in text

    def test_backend_change_rendered_in_diff(self):
        baseline = {
            "k": {"bench": "k", "seconds": 1.0, "extra": {"backend": "numpy"}}
        }
        current = {
            "k": {
                "bench": "k", "seconds": 2.0,
                "extra": {"backend": "native (cc)"},
            }
        }
        text, _ = bench_report.format_report(current, baseline, 1.5)
        assert "[numpy -> native (cc)]" in text

    def test_v1_record_without_backend_has_no_tag(self):
        current = {"k": {"bench": "k", "seconds": 0.5}}
        text, _ = bench_report.format_report(current)
        assert "[" not in text


class TestMain:
    def test_current_only(self, tmp_path, capsys):
        write_record(tmp_path, "alpha", 1.0)
        assert bench_report.main(["--results", str(tmp_path)]) == 0
        assert "alpha" in capsys.readouterr().out

    def test_regression_exit_code(self, tmp_path, capsys):
        write_record(tmp_path / "new", "alpha", 3.0)
        write_record(tmp_path / "old", "alpha", 1.0)
        code = bench_report.main(
            [
                "--results", str(tmp_path / "new"),
                "--baseline", str(tmp_path / "old"),
                "--fail-threshold", "1.5",
            ]
        )
        assert code == 1

    def test_ok_within_threshold(self, tmp_path):
        write_record(tmp_path / "new", "alpha", 1.1)
        write_record(tmp_path / "old", "alpha", 1.0)
        code = bench_report.main(
            [
                "--results", str(tmp_path / "new"),
                "--baseline", str(tmp_path / "old"),
                "--fail-threshold", "1.5",
            ]
        )
        assert code == 0

    def test_pinned_gate_passes_within_threshold(self, tmp_path, capsys):
        results, pinned = tmp_path / "results", tmp_path / "pinned"
        write_record(results, "alpha", 1.2)
        write_record(pinned, "alpha", 1.0)
        # 1.2x is inside the 1.25x soft gate.
        code = bench_report.main(
            ["--results", str(results), "--pinned", str(pinned)]
        )
        assert code == 0

    def test_pinned_gate_fails_past_threshold(self, tmp_path, capsys):
        results, pinned = tmp_path / "results", tmp_path / "pinned"
        write_record(results, "alpha", 1.5)
        write_record(pinned, "alpha", 1.0)
        code = bench_report.main(
            ["--results", str(results), "--pinned", str(pinned)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_pinned_gate_ignores_unpinned_benches(self, tmp_path):
        results, pinned = tmp_path / "results", tmp_path / "pinned"
        write_record(results, "alpha", 1.0)
        write_record(results, "extra", 99.0)  # not pinned → 'new', no gate
        write_record(pinned, "alpha", 1.0)
        code = bench_report.main(
            ["--results", str(results), "--pinned", str(pinned)]
        )
        assert code == 0

    def test_pinned_threshold_override(self, tmp_path):
        results, pinned = tmp_path / "results", tmp_path / "pinned"
        write_record(results, "alpha", 1.2)
        write_record(pinned, "alpha", 1.0)
        code = bench_report.main(
            ["--results", str(results), "--pinned", str(pinned),
             "--fail-threshold", "1.1"]
        )
        assert code == 1

    def test_pinned_and_baseline_exclusive(self, tmp_path, capsys):
        results = tmp_path / "results"
        write_record(results, "alpha", 1.0)
        code = bench_report.main(
            ["--results", str(results), "--pinned", str(tmp_path),
             "--baseline", str(tmp_path)]
        )
        assert code == 2

    def test_pinned_directory_committed(self):
        # The soft gate CI step relies on these records existing.
        assert bench_report.DEFAULT_PINNED.is_dir()
        assert list(bench_report.DEFAULT_PINNED.glob("BENCH_*.json"))

    def test_missing_directory(self, tmp_path):
        assert bench_report.main(["--results", str(tmp_path / "nope")]) == 2
