"""Tests for the simulated-annealing solver (repro.mrf.anneal)."""

import pytest

from repro.mrf.anneal import SimulatedAnnealingSolver
from repro.mrf.exact import ExactSolver
from repro.mrf.graph import PairwiseMRF
from repro.mrf.solvers import available_solvers, get_solver

from helpers import make_random_mrf


class TestConstruction:
    def test_registered(self):
        assert "anneal" in available_solvers()
        assert isinstance(get_solver("anneal"), SimulatedAnnealingSolver)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_iterations=0),
            dict(start_temperature=0.0),
            dict(end_temperature=-1.0),
            dict(start_temperature=0.1, end_temperature=0.5),
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(**kwargs)


class TestSolving:
    def test_empty(self):
        result = SimulatedAnnealingSolver().solve(PairwiseMRF())
        assert result.labels == [] and result.converged

    def test_single_node(self):
        mrf = PairwiseMRF()
        mrf.add_node([2.0, 0.5, 1.0])
        result = SimulatedAnnealingSolver(max_iterations=20, seed=0).solve(mrf)
        assert result.labels == [1]

    @pytest.mark.parametrize("seed", range(4))
    def test_close_to_exact_on_small_instances(self, seed):
        mrf = make_random_mrf(nodes=6, edge_probability=0.5, max_labels=3, seed=seed)
        exact = ExactSolver().solve(mrf)
        result = SimulatedAnnealingSolver(max_iterations=400, seed=seed).solve(mrf)
        assert result.energy >= exact.energy - 1e-9
        assert result.energy <= exact.energy + 0.5

    def test_deterministic_per_seed(self):
        mrf = make_random_mrf(nodes=8, edge_probability=0.4, max_labels=3, seed=3)
        a = SimulatedAnnealingSolver(max_iterations=50, seed=11).solve(mrf)
        b = SimulatedAnnealingSolver(max_iterations=50, seed=11).solve(mrf)
        assert a.labels == b.labels and a.energy == b.energy

    def test_reported_energy_consistent(self):
        mrf = make_random_mrf(nodes=8, edge_probability=0.4, max_labels=3, seed=5)
        result = SimulatedAnnealingSolver(max_iterations=60, seed=1).solve(mrf)
        assert result.energy == pytest.approx(mrf.energy(result.labels))

    def test_initial_labelling_used(self):
        mrf = make_random_mrf(nodes=5, edge_probability=0.5, max_labels=2, seed=2)
        result = SimulatedAnnealingSolver(
            max_iterations=1, start_temperature=1e-9, end_temperature=1e-9,
            seed=0, initial=[0] * 5,
        ).solve(mrf)
        assert len(result.labels) == 5

    def test_wrong_initial_length(self):
        mrf = make_random_mrf(nodes=5, edge_probability=0.5, max_labels=2, seed=2)
        with pytest.raises(ValueError):
            SimulatedAnnealingSolver(initial=[0, 0]).solve(mrf)

    def test_energy_trace_non_increasing(self):
        mrf = make_random_mrf(nodes=8, edge_probability=0.4, max_labels=3, seed=7)
        result = SimulatedAnnealingSolver(max_iterations=50, seed=2).solve(mrf)
        trace = result.energy_trace
        assert all(a >= b - 1e-9 for a, b in zip(trace, trace[1:]))

    def test_diversify_integration(self, two_product_table):
        from repro.core import diversify
        from repro.network.topologies import chain_network

        result = diversify(
            chain_network(5), two_product_table, solver="anneal",
            max_iterations=200, seed=0,
        )
        labels = [result.assignment.get(h, "svc") for h in result.assignment.network.hosts]
        assert all(a != b for a, b in zip(labels, labels[1:]))
