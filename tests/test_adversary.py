"""Tests for the adversarial evaluation (repro.adversary)."""

import pytest

from repro.adversary.evaluate import evaluate_attacker, knowledge_sweep
from repro.adversary.knowledge import BlindKnowledge, FullKnowledge, NoisyKnowledge
from repro.adversary.planner import plan_attack
from repro.network.assignment import ProductAssignment
from repro.network.model import Network
from repro.network.topologies import chain_network
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def diamond():
    """entry → target via a fast path (rate 0.9) and a slow path (0.1)."""
    net = Network()
    for name in ("entry", "fast", "slow", "target"):
        net.add_host(name, {"svc": ["a", "b", "c"]})
    net.add_links(
        [("entry", "fast"), ("entry", "slow"), ("fast", "target"), ("slow", "target")]
    )
    assignment = ProductAssignment(net, {(h, "svc"): "a" for h in net.hosts})
    # Make 'slow' dissimilar so edges through it are weak.
    assignment.assign("slow", "svc", "b")
    table = SimilarityTable()  # sim(a,b) = 0
    return net, assignment, table


class TestKnowledgeModels:
    def test_full_is_identity(self):
        rates = {("a", "b"): 0.4, ("b", "a"): 0.4}
        assert FullKnowledge().perceive(rates) == rates

    def test_noisy_bounded_and_deterministic(self):
        rates = {("a", "b"): 0.5, ("b", "a"): 0.5, ("b", "c"): 0.0}
        model = NoisyKnowledge(noise=0.3, seed=1)
        perceived = model.perceive(rates)
        assert perceived == model.perceive(rates)
        assert 0.0 < perceived[("a", "b")] <= 1.0
        assert perceived[("b", "c")] == 0.0  # nonexistent vectors stay dead

    def test_noisy_zero_noise_is_full(self):
        rates = {("a", "b"): 0.42}
        assert NoisyKnowledge(noise=0.0).perceive(rates)[("a", "b")] == pytest.approx(0.42)

    def test_blind_flattens(self):
        rates = {("a", "b"): 0.9, ("b", "a"): 0.1, ("a", "c"): 0.0}
        perceived = BlindKnowledge(assumed_rate=0.5).perceive(rates)
        assert perceived[("a", "b")] == perceived[("b", "a")] == 0.5
        assert perceived[("a", "c")] == 0.0

    @pytest.mark.parametrize("kwargs", [dict(noise=-0.1), dict(floor=0.0)])
    def test_noisy_validation(self, kwargs):
        with pytest.raises(ValueError):
            NoisyKnowledge(**kwargs)

    def test_blind_validation(self):
        with pytest.raises(ValueError):
            BlindKnowledge(assumed_rate=0.0)


class TestPlanner:
    def test_picks_highest_probability_path(self, diamond):
        net, _, _ = diamond
        rates = {
            ("entry", "fast"): 0.9, ("fast", "entry"): 0.9,
            ("fast", "target"): 0.9, ("target", "fast"): 0.9,
            ("entry", "slow"): 0.1, ("slow", "entry"): 0.1,
            ("slow", "target"): 0.1, ("target", "slow"): 0.1,
        }
        plan = plan_attack(net, rates, "entry", "target")
        assert plan.path == ("entry", "fast", "target")
        assert plan.perceived_success == pytest.approx(0.81)
        assert plan.perceived_expected_ticks == pytest.approx(2 / 0.9)

    def test_longer_but_stronger_path_wins(self):
        net = chain_network(4)
        net.add_host("short", {"svc": ["p0", "p1"]})
        net.add_link("h0", "short")
        net.add_link("short", "h3")
        rates = {}
        for a, b in net.links:
            rates[(a, b)] = rates[(b, a)] = 0.9
        rates[("h0", "short")] = rates[("short", "h0")] = 0.05
        rates[("short", "h3")] = rates[("h3", "short")] = 0.05
        plan = plan_attack(net, rates, "h0", "h3")
        assert plan.path == ("h0", "h1", "h2", "h3")

    def test_entry_equals_target(self):
        net = chain_network(2)
        plan = plan_attack(net, {}, "h0", "h0")
        assert plan.hops == 0 and plan.perceived_success == 1.0

    def test_unreachable_raises(self):
        net = chain_network(3)
        rates = {edge: 0.0 for a, b in net.links for edge in [(a, b), (b, a)]}
        with pytest.raises(ValueError):
            plan_attack(net, rates, "h0", "h2")

    def test_unknown_hosts_raise(self):
        net = chain_network(3)
        with pytest.raises(KeyError):
            plan_attack(net, {}, "zz", "h2")


class TestEvaluation:
    def test_full_knowledge_finds_true_best(self, diamond):
        net, assignment, table = diamond
        result = evaluate_attacker(
            net, assignment, table, "entry", "target", FullKnowledge(),
            runs=100, p_avg=0.1, p_max=0.9, seed=1,
        )
        # Full knowledge routes via 'fast' (both hosts on product a).
        assert result.plan.path == ("entry", "fast", "target")
        assert result.true_expected_ticks == pytest.approx(2 / 0.9, rel=0.01)

    def test_simulation_matches_expectation(self, diamond):
        net, assignment, table = diamond
        result = evaluate_attacker(
            net, assignment, table, "entry", "target", FullKnowledge(),
            runs=2000, p_avg=0.1, p_max=0.9, seed=3,
        )
        assert result.simulated_mttc == pytest.approx(
            result.true_expected_ticks, rel=0.15
        )
        assert result.simulated_success_rate == 1.0

    def test_blind_can_pick_worse_path(self, diamond):
        net, assignment, table = diamond
        # Blind ties are broken by Dijkstra order; what matters is the
        # guarantee: blind is never *better* than full knowledge.
        full = evaluate_attacker(
            net, assignment, table, "entry", "target", FullKnowledge(),
            runs=50, seed=5,
        )
        blind = evaluate_attacker(
            net, assignment, table, "entry", "target", BlindKnowledge(),
            runs=50, seed=5,
        )
        assert blind.true_expected_ticks >= full.true_expected_ticks - 1e-9

    def test_deterministic(self, diamond):
        net, assignment, table = diamond
        kwargs = dict(runs=50, seed=9)
        a = evaluate_attacker(net, assignment, table, "entry", "target",
                              NoisyKnowledge(noise=0.2, seed=2), **kwargs)
        b = evaluate_attacker(net, assignment, table, "entry", "target",
                              NoisyKnowledge(noise=0.2, seed=2), **kwargs)
        assert a.simulated_mttc == b.simulated_mttc
        assert a.plan.path == b.plan.path

    def test_sweep_structure(self, diamond):
        net, assignment, table = diamond
        sweep = knowledge_sweep(
            net, assignment, table, "entry", "target",
            noise_levels=(0.2,), runs=30, seed=1,
        )
        assert list(sweep) == ["full", "noisy-0.2", "blind"]
        full = sweep["full"].true_expected_ticks
        for result in sweep.values():
            assert result.true_expected_ticks >= full - 1e-9
            assert "plan=" in result.row()

    def test_full_knowledge_never_loses_on_case_study(self):
        from repro.casestudy.stuxnet import stuxnet_case_study
        from repro.core import diversify

        case = stuxnet_case_study()
        optimal = diversify(case.network, case.similarity).assignment
        sweep = knowledge_sweep(
            case.network, optimal, case.similarity, "c4", "t5",
            noise_levels=(0.3,), runs=50, seed=4,
        )
        assert sweep["full"].true_expected_ticks <= min(
            r.true_expected_ticks for r in sweep.values()
        ) + 1e-9
