"""Tests for the service layer's offline pieces: event codec, config,
metrics, and on-disk snapshots (byte-identical restore + warm parity)."""

import json

import numpy as np
import pytest

from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.service import (
    SNAPSHOT_SCHEMA,
    ServiceConfig,
    ServiceMetrics,
    latest_snapshot,
    load_snapshot,
    prune_snapshots,
    restore_engine,
    restore_plan,
    save_snapshot,
)
from repro.stream import (
    ChurnConfig,
    DynamicDiversifier,
    event_from_dict,
    event_to_dict,
    random_churn_trace,
)


def workload(hosts=24, degree=2, services=2, pps=4, seed=0):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        products_per_service=pps, similarity_density=0.3, seed=seed,
    )
    return random_network(config), random_similarity(config)


def churny_engine(events=10, seed=0, constraint_weight=0.3, **options):
    """An engine that has lived through a trace (plan patched in place)."""
    network, similarity = workload(seed=seed)
    trace = random_churn_trace(
        network,
        ChurnConfig(events=events, seed=seed, constraint_weight=constraint_weight),
    )
    engine = DynamicDiversifier(network, similarity, **options)
    engine.solve()
    for event in trace:
        engine.apply(event)
        engine.solve()
    return engine, trace


class TestEventCodec:
    def test_round_trip_every_type(self):
        network, _ = workload()
        trace = random_churn_trace(
            network,
            ChurnConfig(events=60, seed=4, constraint_weight=0.5),
        )
        seen = set()
        for event in trace:
            wire = event_to_dict(event)
            seen.add(wire["type"])
            again = event_from_dict(json.loads(json.dumps(wire)))
            assert event_to_dict(again) == wire
            assert type(again) is type(event)

        assert "link_add" in seen or "link_remove" in seen

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError, match="unknown event type"):
            event_from_dict({"type": "reboot"})

    def test_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            event_from_dict({"type": "link_add", "a": "h0"})

    def test_rejects_non_mapping(self):
        with pytest.raises(ValueError):
            event_from_dict(["link_add"])


class TestServiceConfig:
    def test_defaults_are_valid(self):
        config = ServiceConfig()
        assert config.port == 8351
        assert not config.snapshots_enabled

    def test_snapshot_dir_coerced_to_path(self, tmp_path):
        config = ServiceConfig(snapshot_dir=str(tmp_path))
        assert config.snapshots_enabled
        assert config.snapshot_dir == tmp_path

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"port": -1},
            {"port": 70000},
            {"solver": "gurobi"},
            {"batch_max": 0},
            {"high_water": 0},
            {"retry_after": 0.0},
            {"snapshot_every": -1},
            {"keep_snapshots": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestServiceMetrics:
    def test_counters_and_gauges_render(self):
        metrics = ServiceMetrics()
        metrics.inc("events_ingested_total", 5)
        metrics.set_gauge("queue_depth", 3)
        text = metrics.render()
        assert "repro_events_ingested_total 5" in text
        assert "repro_queue_depth 3" in text
        # pre-registered counters scrape as zero even before first use
        assert "repro_snapshots_total 0" in text

    def test_histogram_is_cumulative(self):
        metrics = ServiceMetrics()
        metrics.observe_solve(0.0005)   # below first bound
        metrics.observe_solve(0.03)     # mid bucket
        metrics.observe_solve(99.0)     # beyond last bound -> +Inf only
        text = metrics.render()
        assert 'repro_solve_seconds_bucket{le="0.001"} 1' in text
        assert 'repro_solve_seconds_bucket{le="0.05"} 2' in text
        assert 'repro_solve_seconds_bucket{le="5.0"} 2' in text
        assert 'repro_solve_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_solve_seconds_count 3" in text


class TestSnapshotRoundTrip:
    def test_arrays_restore_byte_identical(self, tmp_path):
        engine, _ = churny_engine(seed=1)
        path = save_snapshot(engine, tmp_path, version=7)
        snapshot = load_snapshot(path)
        assert snapshot.version == 7

        live = engine.plan
        live.flush()
        live.pad_messages()
        restored = restore_plan(snapshot)

        assert restored.variables == live.variables
        assert restored.candidates == live.candidates
        for name in ("unary", "label_counts", "edge_first", "edge_second",
                     "edge_cid", "cost"):
            assert np.array_equal(
                getattr(restored.plan, name), getattr(live.plan, name)
            ), name
        assert np.array_equal(restored.messages, live.messages)
        assert np.array_equal(restored.labels, live.labels)
        assert restored._edge_keys == live._edge_keys
        assert restored._combo_cids == live._combo_cids

    def test_warm_solve_matches_never_restarted_engine(self, tmp_path):
        engine, _ = churny_engine(seed=2)
        path = save_snapshot(engine, tmp_path, version=1, events_applied=10)

        twin, snapshot = restore_engine(path)
        assert snapshot.events_applied == 10

        network = engine.network
        follow_up = random_churn_trace(
            network, ChurnConfig(events=6, seed=99, constraint_weight=0.3)
        )
        for event in follow_up:
            engine.apply(event)
            twin.apply(event)
            original = engine.solve()
            restarted = twin.solve()
            assert restarted.warm == original.warm
            assert restarted.energy == pytest.approx(original.energy, abs=1e-12)
            assert (
                restarted.assignment.as_dict() == original.assignment.as_dict()
            )

    def test_restore_preserves_constraints_and_cost_model(self, tmp_path):
        engine, _ = churny_engine(
            seed=3, unary_constant=0.05, pairwise_weight=2.0
        )
        path = save_snapshot(engine, tmp_path, version=1)
        twin, _ = restore_engine(path)
        assert len(twin.constraints) == len(engine.constraints)
        assert twin.plan.unary_constant == engine.plan.unary_constant
        assert twin.plan.pairwise_weight == engine.plan.pairwise_weight
        assert twin.similarity._pairs == engine.similarity._pairs

    def test_meta_records_schema_and_energy(self, tmp_path):
        engine, _ = churny_engine(seed=4)
        result = engine.solve()
        path = save_snapshot(
            engine, tmp_path, version=3, events_applied=10, energy=result.energy
        )
        meta = json.loads((path / "meta.json").read_text())
        assert meta["schema"] == SNAPSHOT_SCHEMA
        assert meta["version"] == 3
        assert meta["energy"] == pytest.approx(result.energy)

    def test_load_rejects_future_schema(self, tmp_path):
        engine, _ = churny_engine(seed=5, events=2)
        path = save_snapshot(engine, tmp_path, version=1)
        meta = json.loads((path / "meta.json").read_text())
        meta["schema"] = SNAPSHOT_SCHEMA + 1
        (path / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="schema"):
            load_snapshot(path)

    def test_latest_and_prune(self, tmp_path):
        engine, _ = churny_engine(seed=6, events=2)
        for version in (1, 2, 3, 4):
            save_snapshot(engine, tmp_path, version=version)
        assert latest_snapshot(tmp_path).name == "snap-00000004"
        prune_snapshots(tmp_path, keep=2)
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert remaining == ["snap-00000003", "snap-00000004"]

    def test_latest_on_empty_directory(self, tmp_path):
        assert latest_snapshot(tmp_path) is None

    def test_sharded_engine_round_trip(self, tmp_path):
        engine, _ = churny_engine(seed=7, sharded=True, constraint_weight=0.0)
        reference = engine.solve()
        path = save_snapshot(engine, tmp_path, version=1)
        twin, _ = restore_engine(path, sharded=True)
        restarted = twin.solve()
        assert restarted.energy == pytest.approx(reference.energy, abs=1e-12)
