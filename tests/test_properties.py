"""Cross-cutting property-based tests.

Hypothesis-driven invariants spanning the whole stack — randomly generated
networks, similarity tables and assignments must always satisfy the model's
contracts, whatever the draw.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    diversify,
    greedy_assignment,
    mono_assignment,
    random_assignment,
)
from repro.core.costs import assignment_energy, build_mrf
from repro.core.planner import plan_upgrade
from repro.metrics.bayes import compromise_probability
from repro.metrics.richness import effective_richness
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.nvd.similarity import SimilarityTable
from repro.sim.malware import InfectionModel


def workload(seed, hosts=10, degree=3, services=2, density=0.5):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        similarity_density=density, seed=seed,
    )
    return random_network(config), random_similarity(config)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_diversify_always_complete_and_within_ranges(seed):
    network, similarity = workload(seed)
    result = diversify(network, similarity, max_iterations=20)
    assert result.assignment.is_complete()
    for host in network.hosts:
        for service in network.services_of(host):
            product = result.assignment.get(host, service)
            assert product in network.candidates(host, service)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_optimal_never_worse_than_baselines(seed):
    network, similarity = workload(seed)
    optimal = diversify(network, similarity, max_iterations=40)
    for baseline in (
        mono_assignment(network),
        random_assignment(network, seed=seed),
        greedy_assignment(network, similarity),
    ):
        assert optimal.energy <= assignment_energy(
            network, similarity, baseline
        ) + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_energy_parity_between_mrf_and_direct(seed):
    network, similarity = workload(seed)
    build = build_mrf(network, similarity)
    assignment = random_assignment(network, seed=seed)
    labels = build.assignment_to_labels(assignment)
    assert build.mrf.energy(labels) == pytest.approx(
        assignment_energy(network, similarity, assignment)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dual_bound_is_below_every_labelling(seed):
    network, similarity = workload(seed, hosts=8)
    result = diversify(network, similarity, fast_path=False, max_iterations=30)
    for baseline_seed in range(3):
        baseline = random_assignment(network, seed=baseline_seed)
        assert result.lower_bound <= assignment_energy(
            network, similarity, baseline
        ) + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    p_avg=st.floats(min_value=0.01, max_value=0.3),
    boost=st.floats(min_value=0.0, max_value=0.6),
)
def test_compromise_probability_is_a_probability(seed, p_avg, boost):
    network, similarity = workload(seed, hosts=8)
    assignment = random_assignment(network, seed=seed)
    model = InfectionModel(
        similarity=similarity, p_avg=p_avg, p_max=min(1.0, p_avg + boost)
    )
    hosts = network.hosts
    probability = compromise_probability(
        network, assignment, model, hosts[0], hosts[-1]
    )
    assert 0.0 <= probability <= 1.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mono_is_always_most_compromising(seed):
    """With zero cross-product similarity, every random assignment is at
    most as risky as the mono-culture under the BN metric."""
    config = RandomNetworkConfig(
        hosts=8, degree=3, services=1, similarity_density=0.0, seed=seed
    )
    network = random_network(config)
    similarity = random_similarity(config)
    model = InfectionModel(similarity=similarity, p_avg=0.1, p_max=0.6)
    hosts = network.hosts
    p_mono = compromise_probability(
        network, mono_assignment(network), model, hosts[0], hosts[-1]
    )
    p_random = compromise_probability(
        network, random_assignment(network, seed=seed), model, hosts[0], hosts[-1]
    )
    assert p_random <= p_mono + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), budget=st.integers(0, 6))
def test_planner_budget_and_monotonicity(seed, budget):
    network, similarity = workload(seed, hosts=8)
    current = random_assignment(network, seed=seed)
    plan = plan_upgrade(network, similarity, current, budget=budget)
    assert plan.changes <= budget
    assert plan.final_energy <= plan.initial_energy + 1e-9
    assert plan.final_energy == pytest.approx(
        assignment_energy(network, similarity, plan.final_assignment)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_richness_bounds_hold(seed):
    network, similarity = workload(seed)
    report = effective_richness(network, random_assignment(network, seed=seed))
    assert 1.0 - 1e-9 <= report.effective <= report.distinct + 1e-9
    assert 0.0 < report.d1 <= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_network_json_round_trip_preserves_optimisation(seed):
    from repro.network.io import network_from_json, network_to_json

    network, similarity = workload(seed, hosts=8)
    clone, _ = network_from_json(network_to_json(network))
    original = diversify(network, similarity, max_iterations=20)
    reloaded = diversify(clone, similarity, max_iterations=20)
    assert original.energy == pytest.approx(reloaded.energy)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    pairs=st.dictionaries(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")).filter(
            lambda t: t[0] < t[1]
        ),
        st.floats(min_value=0.0, max_value=1.0),
        max_size=6,
    ),
)
def test_similarity_io_round_trip(seed, pairs):
    from repro.nvd.io import dumps_similarity, loads_similarity

    table = SimilarityTable(products="abcd", pairs=pairs)
    clone = loads_similarity(dumps_similarity(table))
    for a in "abcd":
        for b in "abcd":
            assert clone.get(a, b) == pytest.approx(table.get(a, b))
