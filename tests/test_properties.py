"""Cross-cutting property-based tests.

Hypothesis-driven invariants spanning the whole stack — randomly generated
networks, similarity tables and assignments must always satisfy the model's
contracts, whatever the draw.

The second half of the module is the **invariant pack**: one seeded fuzz
case (network + similarity + churn trace) is driven through every layer's
parity contract from a single place — compile byte-parity, kernel-backend
bit-parity, warm==cold stream energy, sharded==monolithic, and the dual
decomposition's certified duality gap.  Each invariant is registered in
``INVARIANT_PACK`` so new layers add one function, not a new harness.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    diversify,
    greedy_assignment,
    mono_assignment,
    random_assignment,
)
from repro.core.compile import compile_plan
from repro.core.costs import assignment_energy, build_mrf
from repro.core.planner import plan_upgrade
from repro.metrics.bayes import compromise_probability
from repro.metrics.richness import effective_richness
from repro.mrf import (
    DualDecompositionSolver,
    MRFArrays,
    ShardedSolver,
    TRWSSolver,
)
from repro.mrf.backends import get_backend
from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.nvd.similarity import SimilarityTable
from repro.sim.malware import InfectionModel
from repro.stream import (
    ChurnConfig,
    DynamicDiversifier,
    apply_event,
    random_churn_trace,
)


def workload(seed, hosts=10, degree=3, services=2, density=0.5):
    config = RandomNetworkConfig(
        hosts=hosts, degree=degree, services=services,
        similarity_density=density, seed=seed,
    )
    return random_network(config), random_similarity(config)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_diversify_always_complete_and_within_ranges(seed):
    network, similarity = workload(seed)
    result = diversify(network, similarity, max_iterations=20)
    assert result.assignment.is_complete()
    for host in network.hosts:
        for service in network.services_of(host):
            product = result.assignment.get(host, service)
            assert product in network.candidates(host, service)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_optimal_never_worse_than_baselines(seed):
    network, similarity = workload(seed)
    optimal = diversify(network, similarity, max_iterations=40)
    for baseline in (
        mono_assignment(network),
        random_assignment(network, seed=seed),
        greedy_assignment(network, similarity),
    ):
        assert optimal.energy <= assignment_energy(
            network, similarity, baseline
        ) + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_energy_parity_between_mrf_and_direct(seed):
    network, similarity = workload(seed)
    build = build_mrf(network, similarity)
    assignment = random_assignment(network, seed=seed)
    labels = build.assignment_to_labels(assignment)
    assert build.mrf.energy(labels) == pytest.approx(
        assignment_energy(network, similarity, assignment)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_dual_bound_is_below_every_labelling(seed):
    network, similarity = workload(seed, hosts=8)
    result = diversify(network, similarity, fast_path=False, max_iterations=30)
    for baseline_seed in range(3):
        baseline = random_assignment(network, seed=baseline_seed)
        assert result.lower_bound <= assignment_energy(
            network, similarity, baseline
        ) + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    p_avg=st.floats(min_value=0.01, max_value=0.3),
    boost=st.floats(min_value=0.0, max_value=0.6),
)
def test_compromise_probability_is_a_probability(seed, p_avg, boost):
    network, similarity = workload(seed, hosts=8)
    assignment = random_assignment(network, seed=seed)
    model = InfectionModel(
        similarity=similarity, p_avg=p_avg, p_max=min(1.0, p_avg + boost)
    )
    hosts = network.hosts
    probability = compromise_probability(
        network, assignment, model, hosts[0], hosts[-1]
    )
    assert 0.0 <= probability <= 1.0


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mono_is_always_most_compromising(seed):
    """With zero cross-product similarity, every random assignment is at
    most as risky as the mono-culture under the BN metric."""
    config = RandomNetworkConfig(
        hosts=8, degree=3, services=1, similarity_density=0.0, seed=seed
    )
    network = random_network(config)
    similarity = random_similarity(config)
    model = InfectionModel(similarity=similarity, p_avg=0.1, p_max=0.6)
    hosts = network.hosts
    p_mono = compromise_probability(
        network, mono_assignment(network), model, hosts[0], hosts[-1]
    )
    p_random = compromise_probability(
        network, random_assignment(network, seed=seed), model, hosts[0], hosts[-1]
    )
    assert p_random <= p_mono + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), budget=st.integers(0, 6))
def test_planner_budget_and_monotonicity(seed, budget):
    network, similarity = workload(seed, hosts=8)
    current = random_assignment(network, seed=seed)
    plan = plan_upgrade(network, similarity, current, budget=budget)
    assert plan.changes <= budget
    assert plan.final_energy <= plan.initial_energy + 1e-9
    assert plan.final_energy == pytest.approx(
        assignment_energy(network, similarity, plan.final_assignment)
    )


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_richness_bounds_hold(seed):
    network, similarity = workload(seed)
    report = effective_richness(network, random_assignment(network, seed=seed))
    assert 1.0 - 1e-9 <= report.effective <= report.distinct + 1e-9
    assert 0.0 < report.d1 <= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_network_json_round_trip_preserves_optimisation(seed):
    from repro.network.io import network_from_json, network_to_json

    network, similarity = workload(seed, hosts=8)
    clone, _ = network_from_json(network_to_json(network))
    original = diversify(network, similarity, max_iterations=20)
    reloaded = diversify(clone, similarity, max_iterations=20)
    assert original.energy == pytest.approx(reloaded.energy)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    pairs=st.dictionaries(
        st.tuples(st.sampled_from("abcd"), st.sampled_from("abcd")).filter(
            lambda t: t[0] < t[1]
        ),
        st.floats(min_value=0.0, max_value=1.0),
        max_size=6,
    ),
)
def test_similarity_io_round_trip(seed, pairs):
    from repro.nvd.io import dumps_similarity, loads_similarity

    table = SimilarityTable(products="abcd", pairs=pairs)
    clone = loads_similarity(dumps_similarity(table))
    for a in "abcd":
        for b in "abcd":
            assert clone.get(a, b) == pytest.approx(table.get(a, b))


# ============================================================ invariant pack
#
# One seeded fuzz case drives every layer's parity contract.  The case
# family is the sparse, well-colorable workload (degree 2, low similarity
# density) where cold TRW-S reliably finds the optimum — the precondition
# of the warm/cold and sharded/monolithic parity contracts.

NATIVE_AVAILABLE = get_backend("native").available

#: name -> invariant function, each taking a :class:`FuzzCase`.
INVARIANT_PACK: Dict[str, Callable[["FuzzCase"], None]] = {}


def _invariant(fn):
    """Register ``fn`` in the pack under its own name."""
    INVARIANT_PACK[fn.__name__] = fn
    return fn


@dataclass
class FuzzCase:
    """One seeded end-to-end case shared by every pack invariant."""

    seed: int
    network: object
    similarity: object
    trace: List = field(default_factory=list)


def fuzz_case(seed: int, hosts: int = 18, events: int = 4) -> FuzzCase:
    """Build the shared fuzz case: workload plus a short churn trace."""
    config = RandomNetworkConfig(
        hosts=hosts, degree=2, services=2, products_per_service=4,
        similarity_density=0.3, seed=seed,
    )
    network = random_network(config)
    similarity = random_similarity(config)
    trace = random_churn_trace(
        network, ChurnConfig(events=events, seed=seed + 1)
    )
    return FuzzCase(seed, network, similarity, trace)


@_invariant
def compile_byte_parity(case: FuzzCase) -> None:
    """The direct compiler's plan is byte-identical to the Python build."""
    reference = MRFArrays(build_mrf(case.network, case.similarity).mrf)
    compiled = compile_plan(case.network, case.similarity).plan
    assert reference.node_count == compiled.node_count
    assert reference.edge_count == compiled.edge_count
    assert reference.lmax == compiled.lmax
    for name in (
        "unary", "label_counts", "edge_first", "edge_second", "edge_cid",
    ):
        left = np.asarray(getattr(reference, name))
        right = np.asarray(getattr(compiled, name))
        assert left.tobytes() == right.tobytes(), name
    assert (
        reference.cost[: reference.stacked].tobytes()
        == compiled.cost[: compiled.stacked].tobytes()
    )
    direct = diversify(case.network, case.similarity, fast_path=False)
    python = diversify(
        case.network, case.similarity, fast_path=False, compile="python"
    )
    assert direct.energy == pytest.approx(python.energy, abs=1e-9)


@_invariant
def backend_bit_parity(case: FuzzCase) -> None:
    """numpy and native kernel backends agree bit-for-bit."""
    if not NATIVE_AVAILABLE:
        return  # the individual test skips loudly; the pack just moves on
    mrf = build_mrf(case.network, case.similarity).mrf
    results = [
        TRWSSolver(backend=name, seed=0).solve_arrays(MRFArrays(mrf))
        for name in ("numpy", "native")
    ]
    assert results[0].energy == results[1].energy  # exact, not approx
    assert results[0].lower_bound == results[1].lower_bound
    assert np.array_equal(results[0].labels, results[1].labels)


@_invariant
def warm_equals_cold_stream_energy(case: FuzzCase) -> None:
    """Warm incremental re-solves match a cold solve after every event.

    Energy equality is asserted whenever *both* solves certify their
    optimum (bound meets energy) — then each provably sits at the global
    minimum and parity is a theorem, not a heuristic outcome.  Uncertified
    draws may land in different basins, so only the unconditional contracts
    apply there: the reported energy is the ground-truth E(N) of the
    returned assignment and never beats the cold solve's valid bound.
    """
    engine = DynamicDiversifier(case.network.copy(), case.similarity.copy())
    first = engine.solve()
    assert first.energy == pytest.approx(
        diversify(case.network, case.similarity, fast_path=False).energy,
        abs=1e-9,
    )
    check_net, check_table = case.network.copy(), case.similarity.copy()
    for event in case.trace:
        engine.apply(event)
        result = engine.solve()
        apply_event(check_net, check_table, event)
        cold = diversify(check_net, check_table, fast_path=False)
        assert result.energy == pytest.approx(
            assignment_energy(check_net, check_table, result.assignment),
            abs=1e-9,
        )
        assert result.energy >= cold.lower_bound - 1e-9
        if cold.certified_optimal and result.certified_optimal:
            assert result.energy == pytest.approx(cold.energy, abs=1e-6)


@_invariant
def sharded_equals_monolithic(case: FuzzCase) -> None:
    """Per-component sharded solves land on the monolithic energy.

    Equality is asserted when both solves certify their optimum (parity is
    then a theorem); uncertified draws still pin the cross-bound contracts
    — each solver's dual bound undercuts the other's labelling.
    """
    mrf = build_mrf(case.network, case.similarity).mrf
    mono = TRWSSolver(seed=0).solve(mrf)
    shard = ShardedSolver(solver="trws", seed=0).solve(mrf)
    assert mrf.energy(shard.labels) == pytest.approx(shard.energy, abs=1e-9)
    assert shard.lower_bound <= mono.energy + 1e-9
    assert mono.lower_bound <= shard.energy + 1e-9
    if mono.is_certified_optimal(tolerance=1e-6) and shard.is_certified_optimal(
        tolerance=1e-6
    ):
        assert shard.energy == pytest.approx(mono.energy, abs=1e-6)


@_invariant
def dual_gap_certificate(case: FuzzCase) -> None:
    """Dual decomposition's gap certifies its distance from the optimum."""
    mrf = build_mrf(case.network, case.similarity).mrf
    mono = TRWSSolver(seed=0).solve(mrf)
    dual = DualDecompositionSolver(parts=3, seed=0, max_rounds=40).solve(mrf)
    assert dual.duality_gap >= -1e-12
    assert dual.lower_bound <= dual.energy + 1e-9
    # The certificate: dual's primal can exceed the true optimum by at most
    # its own reported gap — and its bound never exceeds any labelling.
    assert dual.energy - mono.energy <= dual.duality_gap + 1e-9
    assert dual.lower_bound <= mono.energy + 1e-9
    assert mrf.energy(dual.labels) == pytest.approx(dual.energy, abs=1e-9)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_invariant_pack(seed):
    """Every layer's parity contract holds on one shared random case."""
    case = fuzz_case(seed)
    for name, check in INVARIANT_PACK.items():
        try:
            check(case)
        except AssertionError as exc:  # attribute the failing layer
            raise AssertionError(f"invariant {name!r} failed: {exc}") from exc


@pytest.mark.parametrize("name", sorted(INVARIANT_PACK))
def test_invariant_individually(name):
    """Each pack invariant also runs alone, for failure attribution."""
    if name == "backend_bit_parity" and not NATIVE_AVAILABLE:
        pytest.skip("native backend needs Numba or a C compiler")
    for seed in (0, 7):
        INVARIANT_PACK[name](fuzz_case(seed))
