"""Tests for per-service criticality weights in the cost model."""

import pytest

from repro.core import diversify
from repro.core.costs import assignment_energy, build_mrf
from repro.network.model import Network
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def net():
    network = Network()
    spec = {"os": ["w", "l"], "wb": ["ie", "ch"]}
    for name in ("a", "b", "c"):
        network.add_host(name, spec)
    network.add_link("a", "b")
    network.add_link("b", "c")
    return network


@pytest.fixture
def sim():
    return SimilarityTable(pairs={("w", "l"): 0.5, ("ie", "ch"): 0.5})


class TestBuild:
    def test_weight_scales_matrices(self, net, sim):
        build = build_mrf(net, sim, service_weights={"os": 3.0})
        os_edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("b", "os")])
        wb_edge = build.mrf.edge_id(build.index[("a", "wb")], build.index[("b", "wb")])
        assert build.mrf.edge_cost(os_edge)[0, 1] == pytest.approx(1.5)
        assert build.mrf.edge_cost(wb_edge)[0, 1] == pytest.approx(0.5)

    def test_unlisted_services_weight_one(self, net, sim):
        build = build_mrf(net, sim, service_weights={"os": 2.0})
        wb_edge = build.mrf.edge_id(build.index[("a", "wb")], build.index[("b", "wb")])
        assert build.mrf.edge_cost(wb_edge)[0, 0] == pytest.approx(1.0)

    def test_negative_weight_rejected(self, net, sim):
        with pytest.raises(ValueError):
            build_mrf(net, sim, service_weights={"os": -1.0})

    def test_composes_with_pairwise_weight(self, net, sim):
        build = build_mrf(net, sim, pairwise_weight=2.0, service_weights={"os": 3.0})
        os_edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("b", "os")])
        assert build.mrf.edge_cost(os_edge)[0, 1] == pytest.approx(3.0)

    def test_differently_weighted_matrices_not_shared(self, net, sim):
        build = build_mrf(net, sim, service_weights={"os": 2.0})
        os_edge = build.mrf.edge_id(build.index[("a", "os")], build.index[("b", "os")])
        wb_edge = build.mrf.edge_id(build.index[("a", "wb")], build.index[("b", "wb")])
        assert build.mrf.edge_cost(os_edge) is not build.mrf.edge_cost(wb_edge)


class TestEnergyParity:
    def test_energy_matches_direct_evaluation(self, net, sim):
        weights = {"os": 2.5, "wb": 0.5}
        build = build_mrf(net, sim, service_weights=weights)
        labels = [0, 1, 1, 0, 0, 1]
        assignment = build.labels_to_assignment(net, labels)
        assert build.mrf.energy(labels) == pytest.approx(
            assignment_energy(net, sim, assignment, service_weights=weights)
        )


class TestOptimisation:
    def test_weights_steer_scarce_diversity(self):
        """With one product pair per service and a 3-clique, one service
        must carry similarity on every edge; the optimiser should sacrifice
        the *cheap* service, protecting the critical one."""
        network = Network()
        spec = {"critical": ["c1", "c2"], "cheap": ["x1", "x2"]}
        for name in ("a", "b", "c"):
            network.add_host(name, spec)
        network.add_links([("a", "b"), ("b", "c"), ("a", "c")])
        table = SimilarityTable(pairs={("c1", "c2"): 0.5, ("x1", "x2"): 0.5})
        result = diversify(
            network, table, service_weights={"critical": 10.0, "cheap": 1.0},
            fast_path=False,
        )
        # On the triangle, each service has one forced same-product edge at
        # best; verify the forced sim-1.0 edge never lands on 'critical'
        # unnecessarily more than on 'cheap'.
        def forced_edges(service):
            picks = {h: result.assignment.get(h, service) for h in network.hosts}
            return sum(
                1 for a, b in network.links if picks[a] == picks[b]
            )

        assert forced_edges("critical") <= forced_edges("cheap")

    def test_fast_path_disabled_with_weights(self, net, sim):
        result = diversify(net, sim, service_weights={"os": 2.0})
        assert result.solver_result.solver == "trws"  # general path
