"""Tests for epidemic analytics and the detection race (repro.sim)."""

import pytest

from repro.core.baselines import mono_assignment
from repro.network.assignment import ProductAssignment
from repro.network.topologies import chain_network, star_network
from repro.nvd.similarity import SimilarityTable
from repro.sim.defense import (
    COMPROMISED,
    DETECTED,
    DefendedSimulator,
    race_comparison,
)
from repro.sim.engine import PropagationSimulator
from repro.sim.epidemic import containment_comparison, infection_curve
from repro.sim.malware import InfectionModel


def flat_model(rate):
    return InfectionModel(similarity=SimilarityTable(), p_avg=rate, p_max=rate)


class TestTargetlessRuns:
    def test_run_without_target_spreads_to_cap_or_extinction(self):
        net = chain_network(4)
        sim = PropagationSimulator(net, mono_assignment(net), flat_model(1.0))
        run = sim.run("h0", None, max_ticks=10, seed=1)
        assert run.ticks_to_target is None
        assert run.infection_count() == 4  # everything falls at rate 1.0

    def test_run_many_without_target(self):
        net = chain_network(3)
        sim = PropagationSimulator(net, mono_assignment(net), flat_model(0.5))
        batch = sim.run_many("h0", None, runs=10, max_ticks=20, seed=2)
        assert len(batch) == 10


class TestInfectionCurve:
    def test_certain_spread_curve(self):
        net = chain_network(4)
        curve = infection_curve(
            net, mono_assignment(net), flat_model(1.0), "h0",
            runs=5, max_ticks=5, seed=1,
        )
        # Deterministic: 1, 2, 3, 4, 4, 4 infected at ticks 0..5.
        assert curve.mean_infected[:4] == [1.0, 2.0, 3.0, 4.0]
        assert curve.attack_rate == pytest.approx(1.0)
        assert curve.min_infected[0] == curve.max_infected[0] == 1

    def test_blocked_spread(self):
        net = chain_network(4)
        curve = infection_curve(
            net, mono_assignment(net), flat_model(0.0), "h0",
            runs=5, max_ticks=5, seed=1,
        )
        assert curve.final_size == 1.0
        assert curve.attack_rate == pytest.approx(0.25)
        assert curve.half_time is None

    def test_curve_monotone(self):
        net = star_network(6)
        curve = infection_curve(
            net, mono_assignment(net), flat_model(0.4), "h0",
            runs=30, max_ticks=15, seed=3,
        )
        assert all(
            a <= b + 1e-9
            for a, b in zip(curve.mean_infected, curve.mean_infected[1:])
        )

    def test_half_time_reported(self):
        net = chain_network(6)
        curve = infection_curve(
            net, mono_assignment(net), flat_model(0.8), "h0",
            runs=50, max_ticks=30, seed=4,
        )
        assert curve.half_time is not None
        assert 0 < curve.half_time < 30

    def test_validation(self):
        net = chain_network(3)
        with pytest.raises(ValueError):
            infection_curve(net, mono_assignment(net), flat_model(0.5), "h0", runs=0)
        with pytest.raises(ValueError):
            infection_curve(
                net, mono_assignment(net), flat_model(0.5), "h0", max_ticks=0
            )

    def test_containment_comparison_diverse_slower(self):
        net = chain_network(6, services={"svc": ["x", "y"]})
        alternating = ProductAssignment(net)
        for index, host in enumerate(net.hosts):
            alternating.assign(host, "svc", "x" if index % 2 == 0 else "y")
        table = SimilarityTable()  # distinct products share nothing

        def factory(assignment):
            return InfectionModel(similarity=table, p_avg=0.1, p_max=0.9)

        curves = containment_comparison(
            net,
            {"mono": mono_assignment(net), "diverse": alternating},
            factory, "h0", runs=100, max_ticks=40, seed=5,
        )
        assert curves["diverse"].final_size < curves["mono"].final_size
        assert "attack rate" in curves["mono"].row("mono")


class TestDefendedSimulator:
    def test_zero_detection_reduces_to_attack(self):
        net = chain_network(3)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(1.0), 0.0)
        run = sim.run("h0", "h2", seed=1)
        assert run.outcome == COMPROMISED
        assert run.ticks == 2

    def test_certain_detection_stops_first_attempt(self):
        net = chain_network(3)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(1.0), 1.0)
        run = sim.run("h0", "h2", seed=1)
        assert run.outcome == DETECTED
        assert run.attempts == 1

    def test_entry_equals_target(self):
        net = chain_network(2)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(0.5), 0.5)
        assert sim.run("h0", "h0").outcome == COMPROMISED

    def test_extinct_outcome(self):
        net = chain_network(3)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(0.0), 0.0)
        run = sim.run("h0", "h2", max_ticks=10, seed=1)
        assert run.outcome == "extinct"

    def test_invalid_probability(self):
        net = chain_network(2)
        with pytest.raises(ValueError):
            DefendedSimulator(net, mono_assignment(net), flat_model(0.5), 1.5)

    def test_unknown_hosts(self):
        net = chain_network(2)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(0.5), 0.1)
        with pytest.raises(KeyError):
            sim.run("zz", "h1")

    def test_report_fractions_sum(self):
        net = chain_network(4)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(0.3), 0.05)
        report = sim.run_many("h0", "h3", runs=100, max_ticks=100, seed=7)
        total = report.attacker_wins + report.defender_wins + report.other
        assert total == pytest.approx(1.0)

    def test_deterministic(self):
        net = chain_network(4)
        sim = DefendedSimulator(net, mono_assignment(net), flat_model(0.3), 0.05)
        a = sim.run_many("h0", "h3", runs=50, seed=9)
        b = sim.run_many("h0", "h3", runs=50, seed=9)
        assert a == b

    def test_diversity_shifts_race_to_defender(self):
        net = chain_network(5, services={"svc": ["x", "y"]})
        alternating = ProductAssignment(net)
        for index, host in enumerate(net.hosts):
            alternating.assign(host, "svc", "x" if index % 2 == 0 else "y")
        table = SimilarityTable()

        def factory(assignment):
            return InfectionModel(similarity=table, p_avg=0.15, p_max=0.9)

        races = race_comparison(
            net,
            {"mono": mono_assignment(net), "diverse": alternating},
            factory, "h0", "h4",
            detection_probability=0.03, runs=400, max_ticks=500, seed=11,
        )
        assert races["diverse"].attacker_wins < races["mono"].attacker_wins
        assert races["diverse"].mean_attempts > races["mono"].mean_attempts
