"""Unit + property tests for the similarity metric (repro.nvd.similarity)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.nvd.cpe import CPE
from repro.nvd.cve import CVERecord
from repro.nvd.database import VulnerabilityDatabase
from repro.nvd.similarity import (
    SimilarityTable,
    jaccard_similarity,
    similarity_table_from_database,
)

sets = st.sets(st.integers(min_value=0, max_value=30), max_size=12)


class TestJaccard:
    def test_known_value(self):
        assert jaccard_similarity({1, 2, 3}, {2, 3, 4}) == 0.5

    def test_disjoint_is_zero(self):
        assert jaccard_similarity({1}, {2}) == 0.0

    def test_identical_is_one(self):
        assert jaccard_similarity({1, 2}, {1, 2}) == 1.0

    def test_both_empty_is_zero(self):
        assert jaccard_similarity(set(), set()) == 0.0

    @given(sets, sets)
    def test_symmetric(self, a, b):
        assert jaccard_similarity(a, b) == jaccard_similarity(b, a)

    @given(sets, sets)
    def test_bounded(self, a, b):
        assert 0.0 <= jaccard_similarity(a, b) <= 1.0

    @given(st.sets(st.integers(), min_size=1, max_size=12))
    def test_self_similarity_is_one(self, a):
        assert jaccard_similarity(a, a) == 1.0


class TestSimilarityTable:
    def test_defaults(self):
        table = SimilarityTable(products=["a", "b"])
        assert table.get("a", "a") == 1.0
        assert table.get("a", "b") == 0.0
        assert table.get("a", "unknown") == 0.0

    def test_set_is_symmetric(self):
        table = SimilarityTable()
        table.set("a", "b", 0.3)
        assert table.get("b", "a") == 0.3

    def test_set_registers_products(self):
        table = SimilarityTable()
        table.set("a", "b", 0.3)
        assert "a" in table and "b" in table

    def test_callable_interface(self):
        table = SimilarityTable(pairs={("a", "b"): 0.2})
        assert table("a", "b") == 0.2

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            SimilarityTable().set("a", "b", value)

    def test_rejects_non_unit_self_similarity(self):
        with pytest.raises(ValueError):
            SimilarityTable().set("a", "a", 0.5)

    def test_version_tracks_mutations(self):
        table = SimilarityTable()
        v0 = table.version
        table.add_product("a")
        assert table.version > v0
        v1 = table.version
        table.set("a", "b", 0.4)
        assert table.version > v1
        v2 = table.version
        table.add_product("a")  # idempotent add: no change
        assert table.version == v2

    def test_apply_updates_batch(self):
        table = SimilarityTable(products=["a", "b", "c"])
        table.apply_updates({("a", "b"): 0.3, ("b", "c"): 0.6})
        assert table.get("a", "b") == 0.3
        assert table.get("c", "b") == 0.6

    def test_apply_updates_validates_before_applying(self):
        table = SimilarityTable(products=["a", "b", "c"])
        with pytest.raises(ValueError):
            table.apply_updates({("a", "b"): 0.3, ("b", "c"): 1.6})
        # The valid entry must not have been applied either.
        assert table.get("a", "b") == 0.0

    def test_copy_is_independent(self):
        table = SimilarityTable(pairs={("a", "b"): 0.2})
        table.vulnerability_counts["a"] = 5
        clone = table.copy()
        clone.set("a", "b", 0.9)
        assert table.get("a", "b") == 0.2
        assert clone.get("a", "b") == 0.9
        assert clone.vulnerability_counts["a"] == 5

    def test_unit_self_similarity_allowed(self):
        table = SimilarityTable()
        table.set("a", "a", 1.0)
        assert table.get("a", "a") == 1.0

    def test_matrix(self):
        table = SimilarityTable(pairs={("a", "b"): 0.25})
        matrix = table.matrix(["a", "b"])
        expected = np.array([[1.0, 0.25], [0.25, 1.0]])
        assert np.allclose(matrix, expected)

    def test_matrix_default_products(self):
        table = SimilarityTable(products=["a", "b", "c"])
        assert table.matrix().shape == (3, 3)

    def test_mean_offdiagonal(self):
        table = SimilarityTable(products=["a", "b", "c"], pairs={("a", "b"): 0.6})
        assert table.mean_offdiagonal() == pytest.approx(0.2)

    def test_mean_offdiagonal_degenerate(self):
        assert SimilarityTable(products=["a"]).mean_offdiagonal() == 0.0

    def test_restricted_to(self):
        table = SimilarityTable(
            pairs={("a", "b"): 0.3, ("a", "c"): 0.7},
            vulnerability_counts={"a": 10, "c": 5},
        )
        sub = table.restricted_to(["a", "b"])
        assert sub.products == ["a", "b"]
        assert sub.get("a", "b") == 0.3
        assert sub.get("a", "c") == 0.0
        assert sub.vulnerability_counts == {"a": 10}

    def test_merged_with(self):
        left = SimilarityTable(pairs={("a", "b"): 0.3})
        right = SimilarityTable(pairs={("b", "c"): 0.5, ("a", "b"): 0.4})
        merged = left.merged_with(right)
        assert merged.get("a", "b") == 0.4  # right wins
        assert merged.get("b", "c") == 0.5

    def test_format_table_contains_counts(self):
        table = SimilarityTable(
            pairs={("a", "b"): 0.3},
            vulnerability_counts={"a": 12, "b": 7},
            shared_counts={("a", "b"): 4},
        )
        rendered = table.format_table()
        assert "(12)" in rendered and "(4)" in rendered

    @given(
        st.dictionaries(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d"]),
                st.sampled_from(["a", "b", "c", "d"]),
            ).filter(lambda t: t[0] != t[1]),
            st.floats(min_value=0.0, max_value=1.0),
            max_size=6,
        )
    )
    def test_property_symmetry_and_bounds(self, pairs):
        table = SimilarityTable(pairs=pairs)
        for a in table.products:
            for b in table.products:
                assert table.get(a, b) == table.get(b, a)
                assert 0.0 <= table.get(a, b) <= 1.0
                if a == b:
                    assert table.get(a, b) == 1.0


class TestFromDatabase:
    def test_pipeline_matches_hand_computation(self):
        db = VulnerabilityDatabase()
        chrome = CPE.parse("cpe:/a:google:chrome")
        firefox = CPE.parse("cpe:/a:mozilla:firefox")
        db.add(CVERecord.build(2015, 1, [chrome]))
        db.add(CVERecord.build(2015, 2, [chrome, firefox]))
        db.add(CVERecord.build(2016, 3, [firefox]))
        db.add(CVERecord.build(2016, 4, [firefox]))
        table = similarity_table_from_database(
            db, {"Chrome": chrome, "Firefox": firefox}
        )
        # |C|=2, |F|=3, shared=1, union=4.
        assert table.get("Chrome", "Firefox") == pytest.approx(0.25)
        assert table.vulnerability_counts == {"Chrome": 2, "Firefox": 3}
        assert table.shared_counts[("Chrome", "Firefox")] == 1

    def test_year_bounds_respected(self):
        db = VulnerabilityDatabase()
        chrome = CPE.parse("cpe:/a:google:chrome")
        firefox = CPE.parse("cpe:/a:mozilla:firefox")
        db.add(CVERecord.build(1998, 1, [chrome, firefox]))
        db.add(CVERecord.build(2000, 2, [chrome]))
        table = similarity_table_from_database(
            db, {"Chrome": chrome, "Firefox": firefox}, since=1999, until=2016
        )
        assert table.get("Chrome", "Firefox") == 0.0
        assert table.vulnerability_counts["Firefox"] == 0
