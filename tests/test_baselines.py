"""Tests for the baseline assignment strategies (repro.core.baselines)."""

import pytest

from repro.core.baselines import greedy_assignment, mono_assignment, random_assignment
from repro.core.costs import assignment_energy
from repro.network.constraints import ConstraintSet, FixProduct
from repro.network.model import Network
from repro.network.topologies import ring_network
from repro.nvd.similarity import SimilarityTable


@pytest.fixture
def net():
    return ring_network(6, services={"svc": ["p0", "p1", "p2"]})


@pytest.fixture
def sim():
    return SimilarityTable(pairs={("p0", "p1"): 0.5, ("p1", "p2"): 0.5, ("p0", "p2"): 0.5})


class TestMono:
    def test_complete_and_homogeneous(self, net):
        assignment = mono_assignment(net)
        assert assignment.is_complete()
        products = {assignment.get(h, "svc") for h in net.hosts}
        assert len(products) == 1

    def test_majority_product_chosen(self):
        network = Network()
        network.add_host("a", {"svc": ["x", "y"]})
        network.add_host("b", {"svc": ["y"]})
        network.add_host("c", {"svc": ["y", "x"]})
        assignment = mono_assignment(network)
        assert all(assignment.get(h, "svc") == "y" for h in network.hosts)

    def test_falls_back_when_majority_unavailable(self):
        network = Network()
        network.add_host("a", {"svc": ["x"]})
        network.add_host("b", {"svc": ["y"]})
        network.add_host("c", {"svc": ["y"]})
        assignment = mono_assignment(network)
        assert assignment.get("a", "svc") == "x"  # only candidate
        assert assignment.get("b", "svc") == "y"

    def test_respects_pins(self, net):
        cs = ConstraintSet([FixProduct("h0", "svc", "p2")])
        assignment = mono_assignment(net, constraints=cs)
        assert assignment.get("h0", "svc") == "p2"


class TestRandom:
    def test_complete(self, net):
        assert random_assignment(net, seed=0).is_complete()

    def test_deterministic_per_seed(self, net):
        assert random_assignment(net, seed=4) == random_assignment(net, seed=4)

    def test_seeds_differ(self, net):
        draws = {
            tuple(sorted(random_assignment(net, seed=s).as_dict().items()))
            for s in range(8)
        }
        assert len(draws) > 1

    def test_respects_pins(self, net):
        cs = ConstraintSet([FixProduct("h1", "svc", "p0")])
        for seed in range(5):
            assert random_assignment(net, seed=seed, constraints=cs).get("h1", "svc") == "p0"

    def test_within_candidate_ranges(self):
        network = Network()
        network.add_host("a", {"svc": ["only"]})
        assert random_assignment(network, seed=1).get("a", "svc") == "only"


class TestGreedy:
    def test_complete(self, net, sim):
        assert greedy_assignment(net, sim).is_complete()

    def test_diversifies_star(self, sim):
        # Hub processed first (highest degree); leaves then dodge it.
        from repro.network.topologies import star_network

        net = star_network(4, services={"svc": ["p0", "p1", "p2"]})
        assignment = greedy_assignment(net, sim)
        hub = assignment.get("h0", "svc")
        for leaf in ("h1", "h2", "h3", "h4"):
            assert assignment.get(leaf, "svc") != hub

    def test_beats_mono_on_average(self, net, sim):
        greedy_energy = assignment_energy(net, sim, greedy_assignment(net, sim))
        mono_energy = assignment_energy(net, sim, mono_assignment(net))
        assert greedy_energy < mono_energy

    def test_respects_pins(self, net, sim):
        cs = ConstraintSet([FixProduct("h3", "svc", "p1")])
        assignment = greedy_assignment(net, sim, constraints=cs)
        assert assignment.get("h3", "svc") == "p1"

    def test_deterministic(self, net, sim):
        assert greedy_assignment(net, sim) == greedy_assignment(net, sim)
