"""Tests for the Stuxnet case study (repro.casestudy.stuxnet)."""

import networkx as nx
import pytest

from repro.casestudy.stuxnet import (
    DB_SERVICE,
    ENTRY_POINTS,
    OS_SERVICE,
    ROLES,
    TARGET,
    WB_SERVICE,
    ZONES,
    build_network,
    host_constraints,
    legacy_hosts,
    product_constraints,
    stuxnet_case_study,
)
from repro.nvd.datasets import WIN_7, WIN_XP


@pytest.fixture(scope="module")
def case():
    return stuxnet_case_study()


class TestTopology:
    def test_host_count(self, case):
        assert len(case.network) == 32
        assert len(case.network) == sum(len(hosts) for hosts in ZONES.values())

    def test_connected(self, case):
        assert nx.is_connected(case.network.to_networkx())

    def test_entries_and_target_exist(self, case):
        for entry in ENTRY_POINTS:
            assert entry in case.network
        assert TARGET in case.network

    def test_every_host_has_role(self, case):
        assert set(ROLES) == set(case.network.hosts)

    def test_target_reachable_from_every_entry(self, case):
        graph = case.network.to_networkx()
        for entry in ENTRY_POINTS:
            assert nx.has_path(graph, entry, TARGET)

    def test_ot_zones_not_directly_reachable_from_corporate(self, case):
        # Fig. 3: corporate hosts reach the control network only through
        # the DMZ (z3/z4) — no direct corporate→control link exists.
        for corporate in ZONES["corporate"]:
            for control in ZONES["control"]:
                assert not case.network.has_link(corporate, control)


class TestCatalog:
    def test_services_match_roles(self, case):
        assert case.network.services_of("c1") == [OS_SERVICE, WB_SERVICE]
        assert case.network.services_of("z2") == [OS_SERVICE, DB_SERVICE]
        assert set(case.network.services_of("z4")) == {
            OS_SERVICE, WB_SERVICE, DB_SERVICE,
        }

    def test_wincc_hosts_windows_only(self, case):
        # WinCC requires a Windows OS: c1/e1/r1 candidates are Windows.
        for host in ("c1", "e1", "r1"):
            candidates = case.network.candidates(host, OS_SERVICE)
            assert set(candidates) <= {WIN_XP, WIN_7}

    def test_legacy_hosts_single_candidates(self, case):
        legacy = legacy_hosts()
        assert set(ZONES["operations"]) <= set(legacy)
        for host in legacy:
            for service in case.network.services_of(host):
                assert len(case.network.candidates(host, service)) == 1

    def test_control_network_is_legacy(self, case):
        assert set(ZONES["control"]) <= set(legacy_hosts())

    def test_it_zones_have_flexibility(self, case):
        for host in ("c2", "e2", "r2", "v2", "z4"):
            assert any(
                len(case.network.candidates(host, s)) > 1
                for s in case.network.services_of(host)
            )

    def test_all_products_in_similarity_table(self, case):
        for host in case.network.hosts:
            for service in case.network.services_of(host):
                for product in case.network.candidates(host, service):
                    assert product in case.similarity, product


class TestConstraints:
    def test_c1_validates(self, case):
        case.c1.validate_against(case.network)

    def test_c2_validates(self, case):
        case.c2.validate_against(case.network)

    def test_c1_pins_the_four_policy_hosts(self):
        pinned_hosts = {c.host for c in host_constraints().fixed_products()}
        assert pinned_hosts == {"z4", "e1", "r1", "v1"}

    def test_c2_extends_c1(self):
        assert len(product_constraints()) > len(host_constraints())

    def test_c2_contains_no_ie_on_linux_rules(self):
        from repro.network.constraints import AvoidCombination

        avoid = [c for c in product_constraints() if isinstance(c, AvoidCombination)]
        assert len(avoid) == 4
        assert all(c.service_m == OS_SERVICE and c.service_n == WB_SERVICE for c in avoid)


class TestBundle:
    def test_bundle_contents(self, case):
        assert case.entries == ENTRY_POINTS
        assert case.target == TARGET
        assert len(case.similarity.products) >= 20

    def test_build_network_fresh_instances(self):
        a, b = build_network(), build_network()
        a.set_candidates("c2", OS_SERVICE, [WIN_7])
        assert len(b.candidates("c2", OS_SERVICE)) > 1
