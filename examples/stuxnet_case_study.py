#!/usr/bin/env python3
"""The paper's Stuxnet-inspired case study, end to end (Section VII).

Reproduces, in order:

* Fig. 4  — the optimal assignment α̂ and the constrained optima α̂_C1
  (host pins on z4/e1/r1/v1) and α̂_C2 (no Internet Explorer on Linux);
* Table V — the BN diversity metric d_bn for α̂, α̂_C1, α̂_C2, a random
  assignment and the mono-culture;
* Table VI — mean-time-to-compromise from the five entry points under the
  sophisticated attacker (reduce --runs for a faster demo).

Run:  python examples/stuxnet_case_study.py [--runs N]
"""

import argparse

from repro.casestudy.stuxnet import ZONES, stuxnet_case_study
from repro.experiments import fig4_assignments, table5_diversity, table6_mttc


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=400,
                        help="simulation runs per MTTC cell (paper: 1000)")
    args = parser.parse_args()

    case = stuxnet_case_study()
    print(f"Case study: {len(case.network)} hosts, "
          f"{case.network.edge_count()} links, "
          f"{case.network.variable_count()} (host, service) decisions, "
          f"{len(list(case.c1))} host pins, {len(list(case.c2))} C2 constraints")
    print(f"zones: " + ", ".join(f"{z} ({len(h)})" for z, h in ZONES.items()))
    print()

    # ---- Fig. 4 -------------------------------------------------------------
    results = fig4_assignments(case)
    reference = results["optimal"].assignment
    for label, result in results.items():
        print(f"=== {label} " + "=" * (50 - len(label)))
        print(result.summary())
        if label != "optimal":
            changed = sorted({h for h, _ in reference.diff(result.assignment)})
            print(f"hosts changed vs α̂ (the paper's red squares): "
                  f"{', '.join(changed) or '(none)'}")
        print(result.assignment.format())
        print()

    # ---- Table V ------------------------------------------------------------
    print("=== Table V — diversity metric d_bn (entry c4 → target t5) ===")
    for label, report in table5_diversity(case).items():
        print("  " + report.row(label))
    print()

    # ---- Table VI -----------------------------------------------------------
    print(f"=== Table VI — MTTC in ticks ({args.runs} runs per cell, "
          f"sophisticated attacker) ===")
    mttc = table6_mttc(case, runs=args.runs)
    labels = ["optimal", "host_constrained", "product_constrained", "mono"]
    print(f"{'':24}" + "".join(f"{e:>9}" for e in case.entries))
    for label in labels:
        row = "".join(f"{mttc[(label, e)].mttc:9.2f}" for e in case.entries)
        print(f"{label:<24}{row}")


if __name__ == "__main__":
    main()
