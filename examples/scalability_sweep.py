#!/usr/bin/env python3
"""Scalability study on random networks (paper Section VIII).

Regenerates the rows of Tables VII (runtime vs hosts), VIII (runtime vs
degree) and IX (runtime vs services per host).  The default sweep is
laptop-friendly (up to 1000 hosts); ``--full`` extends to the paper's 6000
hosts / 240k coupled edges, which takes minutes.

Run:  python examples/scalability_sweep.py [--full] [--workers N]

``--workers`` spreads the grid cells over N processes via ``repro.runner``
(-1 = one per CPU); the measured energies and edge counts are identical to
a serial run, only the wall clock shrinks.
"""

import argparse

from repro.experiments import table7_rows, table8_rows, table9_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run at the paper's full scale")
    parser.add_argument("--workers", type=int, default=None,
                        help="processes per sweep (-1 = one per CPU)")
    args = parser.parse_args()

    hosts = (100, 200, 400, 600, 800, 1000)
    t8_scales = [("mid-scale", 1000, 15)]
    t9_scales = [("mid-scale", 1000, 20)]
    if args.full:
        hosts = hosts + (2000, 4000, 6000)
        t8_scales.append(("large-scale", 6000, 25))
        t9_scales.append(("large-scale", 6000, 40))

    print("Table VII — optimisation time vs #hosts")
    print("(paper, C++/CUDA: mid 0.24→33.4s, high 0.64→151s over 100→6000)")
    for (label, count), cell in table7_rows(host_counts=hosts, workers=args.workers).items():
        print(f"  {label:<14}" + cell.row())
    print()

    print("Table VIII — optimisation time vs degree")
    print("(paper mid-scale: 0.76s @ deg 5 → 6.31s @ deg 50)")
    for (label, degree), cell in table8_rows(scales=t8_scales, workers=args.workers).items():
        print(f"  {label:<14}" + cell.row())
    print()

    print("Table IX — optimisation time vs services per host")
    print("(paper mid-scale: 0.60s @ 5 services → 6.97s @ 30 services)")
    for (label, services), cell in table9_rows(scales=t9_scales, workers=args.workers).items():
        print(f"  {label:<14}" + cell.row())


if __name__ == "__main__":
    main()
