#!/usr/bin/env python3
"""Quickstart: diversify a small network in ~30 lines.

Builds a six-host network running two services, supplies a vulnerability
similarity table, computes the optimal product assignment with TRW-S, and
evaluates how much harder the diversified network is to traverse.

Run:  python examples/quickstart.py
"""

from repro import (
    Network,
    SimilarityTable,
    diversify,
    diversity_metric,
    mono_assignment,
)

# --- 1. model the network ---------------------------------------------------
network = Network()
oses = ["windows", "ubuntu", "debian"]
browsers = ["ie", "chrome"]
for name in ("web", "app", "db", "ops1", "ops2", "hmi"):
    network.add_host(name, {"os": oses, "browser": browsers})
network.add_links(
    [
        ("web", "app"), ("app", "db"), ("app", "ops1"),
        ("ops1", "ops2"), ("ops2", "hmi"), ("web", "ops1"),
    ]
)

# --- 2. vulnerability similarity (e.g. measured from NVD) --------------------
similarity = SimilarityTable(
    pairs={
        ("windows", "ubuntu"): 0.02,
        ("windows", "debian"): 0.02,
        ("ubuntu", "debian"): 0.21,   # shared upstream packages
        ("ie", "chrome"): 0.01,
    }
)

# --- 3. optimise -------------------------------------------------------------
result = diversify(network, similarity)
print("Optimal diversification")
print("=" * 60)
print(result.assignment.format())
print()
print(result.summary())
print()

# --- 4. evaluate against the worst case (mono-culture) -----------------------
mono = mono_assignment(network)
for label, assignment in (("optimal", result.assignment), ("mono-culture", mono)):
    report = diversity_metric(
        network, assignment, similarity, entry="web", target="hmi"
    )
    print(
        f"{label:>14}: P(hmi compromised) = {report.p_with:.5f}   "
        f"d_bn = {report.d_bn:.4f}"
    )
