#!/usr/bin/env python3
"""The vulnerability-similarity measurement pipeline (paper Section III).

Shows both halves of the reproduction's data story:

1. the paper's *published* similarity tables (Tables II and III), embedded
   verbatim so the case study uses exactly the numbers the paper used;
2. the full NVD → CPE filter → Jaccard pipeline run against the synthetic
   CVE feed (the offline substitute for a live NVD dump), demonstrating
   that the generated data has the same structure the paper's statistical
   study found: same-lineage versions share many vulnerabilities, rival
   vendors share almost none.

Run:  python examples/nvd_pipeline.py
"""

from repro.nvd.cpe import CPE
from repro.nvd.datasets import paper_browser_similarity, paper_os_similarity
from repro.nvd.generator import (
    SyntheticNVDConfig,
    generate_synthetic_nvd,
    product_cpe_map,
)
from repro.nvd.similarity import similarity_table_from_database


def main() -> None:
    print("Paper Table II — OS vulnerability similarity (published data)")
    print(paper_os_similarity().format_table())
    print()
    print("Paper Table III — browser vulnerability similarity (published data)")
    print(paper_browser_similarity().format_table())
    print()

    config = SyntheticNVDConfig(seed=7, cves_per_year=250)
    database = generate_synthetic_nvd(config)
    print(f"Synthetic NVD feed: {len(database)} CVE records over "
          f"{config.years[0]}-{config.years[1]}, "
          f"{len(database.products())} product-level CPEs")

    sample = database.records_for_year(2010)[0]
    print(f"example record {sample.cve_id} (CVSS {sample.cvss}): affects "
          + ", ".join(str(c) for c in sample.affected))
    print()

    os_products = {
        name: cpe for name, cpe in product_cpe_map(config).items()
        if cpe.part == "o"
    }
    table = similarity_table_from_database(
        database, os_products, since=1999, until=2016
    )
    print("Similarity table computed from the synthetic feed (OS products):")
    print(table.format_table())
    print()

    adjacent = table.get("microsoft windows_7", "microsoft windows_8.1")
    rivals = table.get("microsoft windows_7", "canonical ubuntu_14.04")
    print(f"adjacent Windows versions: {adjacent:.3f}   "
          f"Windows vs Ubuntu: {rivals:.3f}")
    print("→ same qualitative structure as the paper's Table II: a single "
          "vulnerability frequently affects multiple versions of a lineage, "
          "rarely crosses vendors.")

    # Per-product query, as the paper's CVE-SEARCH pipeline does.
    chrome = CPE.parse("cpe:/a:google:chrome_50")
    hits = database.vulnerabilities_of(chrome)
    print(f"\nCVEs affecting {chrome}: {len(hits)} "
          f"(e.g. {sorted(hits)[:3]} ...)")


if __name__ == "__main__":
    main()
