#!/usr/bin/env python3
"""Defence planning beyond the paper's tables.

Uses the reproduction's extension modules on the Stuxnet case study:

1. **Budgeted upgrades** — the operator can only change a few
   installations; the greedy planner ranks the highest-impact changes and
   shows the diminishing-returns frontier.
2. **Attack-effort metrics** — least attacking effort (distinct exploits
   needed from c4 to t5) and similarity-aware k-zero-day safety, before
   and after diversification.
3. **Effective richness (d1)** — how many "effectively distinct" products
   the deployment fields.
4. **Adversarial evaluation** (the paper's future-work direction) — how
   much an attacker's imperfect reconnaissance costs on the diversified
   network vs the mono-culture.
5. **DOT export** — writes `case_study.dot`; render with
   ``dot -Tpng case_study.dot -o case_study.png``.

Run:  python examples/defense_planning.py
"""

from pathlib import Path

from repro.adversary import knowledge_sweep
from repro.casestudy.stuxnet import ZONES, stuxnet_case_study
from repro.core import diversify, mono_assignment
from repro.core.planner import plan_upgrade, upgrade_frontier
from repro.metrics import (
    effective_richness,
    k_zero_day_safety,
    least_attack_effort,
)
from repro.viz import ascii_summary, to_dot


def main() -> None:
    case = stuxnet_case_study()
    entry, target = "c4", case.target
    mono = mono_assignment(case.network)
    optimal = diversify(case.network, case.similarity).assignment

    # --- 1. budgeted upgrade planning ---------------------------------------
    print("1. Budgeted upgrade plan (5 changes from the mono-culture)")
    print("=" * 68)
    plan = plan_upgrade(case.network, case.similarity, mono, budget=5)
    print(plan.describe())
    frontier = upgrade_frontier(case.network, case.similarity, mono, 20)
    full_gain = frontier[0] - frontier[20]
    for budget in (1, 3, 5, 10, 20):
        captured = (frontier[0] - frontier[budget]) / full_gain
        print(f"  budget {budget:>2}: {100 * captured:5.1f}% of the greedy gain")
    print()

    # --- 2. attack-effort metrics --------------------------------------------
    print(f"2. Attack effort ({entry} → {target})")
    print("=" * 68)
    for label, assignment in (("mono", mono), ("optimal", optimal)):
        effort = least_attack_effort(case.network, assignment, entry, target)
        kzd = k_zero_day_safety(
            case.network, assignment, case.similarity, entry, target,
            threshold=0.2,
        )
        print(f"  {effort.row(label)}")
        print(f"  {kzd.row(label + ' (k-0day)')}")
    print()

    # --- 3. effective richness ----------------------------------------------
    print("3. Effective richness d1")
    print("=" * 68)
    for label, assignment in (("mono", mono), ("optimal", optimal)):
        print("  " + effective_richness(case.network, assignment).row(label))
    print()

    # --- 4. adversarial evaluation -------------------------------------------
    print("4. Price of imperfect reconnaissance (E[ticks] to compromise)")
    print("=" * 68)
    for label, assignment in (("mono", mono), ("optimal", optimal)):
        sweep = knowledge_sweep(
            case.network, assignment, case.similarity, entry, target,
            noise_levels=(0.3,), runs=300, seed=7,
        )
        worst = max(r.true_expected_ticks for r in sweep.values())
        ratio = worst / sweep["full"].true_expected_ticks
        print(f"  --- {label} (ignorance costs the attacker {ratio:.2f}x)")
        for result in sweep.values():
            print("    " + result.row())
    print()

    # --- 5. visual export ----------------------------------------------------
    dot_path = Path("case_study.dot")
    dot_path.write_text(
        to_dot(case.network, optimal, case.similarity, zones=ZONES,
               title="Stuxnet case study — optimal diversification")
    )
    print(f"5. Wrote {dot_path} (render: dot -Tpng {dot_path} -o case_study.png)")
    print()
    print(ascii_summary(case.network, optimal, case.similarity, top_edges=5))


if __name__ == "__main__":
    main()
