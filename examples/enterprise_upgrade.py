#!/usr/bin/env python3
"""Advisor workflow: planning an IT/OT upgrade with constraints.

The paper's motivating use case (Sections I and IX): a system operator
wants to integrate a legacy plant network with new IT infrastructure and
asks *which product to install where* so a single zero-day cannot sweep
the site.  This example walks the full advisory loop:

1. model the current (pre-upgrade) network — a near mono-culture;
2. model the upgrade candidates per host, with real-world constraints:
   the historian must stay on Windows + MS SQL (vendor support contract),
   engineering workstations must not mix IE with Linux, and the two plant
   gateways cannot be touched at all;
3. optimise, and print an actionable migration plan (the diff);
4. quantify the payoff with the diversity metric and MTTC before/after.

Run:  python examples/enterprise_upgrade.py
"""

from repro import (
    AvoidCombination,
    ConstraintSet,
    FixProduct,
    Network,
    ProductAssignment,
    diversify,
    diversity_metric,
    mean_time_to_compromise,
)
from repro.network.constraints import GLOBAL
from repro.nvd.datasets import (
    CHROME,
    DEBIAN_80,
    IE10,
    MARIADB_10,
    MSSQL_14,
    MYSQL_55,
    UBUNTU_1404,
    WIN_7,
    paper_similarity_table,
)

OS, WB, DB = "os", "browser", "database"


def build_upgrade_network() -> Network:
    """Ten hosts across office, server room and plant floor."""
    network = Network()
    any_os = [WIN_7, UBUNTU_1404, DEBIAN_80]
    any_wb = [IE10, CHROME]
    any_db = [MSSQL_14, MYSQL_55, MARIADB_10]
    network.add_host("office-1", {OS: any_os, WB: any_wb})
    network.add_host("office-2", {OS: any_os, WB: any_wb})
    network.add_host("mail", {OS: any_os, DB: any_db})
    network.add_host("erp", {OS: any_os, DB: any_db})
    network.add_host("historian", {OS: any_os, DB: any_db})
    network.add_host("scada-1", {OS: any_os, WB: any_wb})
    network.add_host("scada-2", {OS: any_os, WB: any_wb})
    network.add_host("eng-ws", {OS: any_os, WB: any_wb})
    # The two plant gateways are legacy: one candidate each, untouchable.
    network.add_host("plant-gw-1", {OS: [WIN_7]})
    network.add_host("plant-gw-2", {OS: [WIN_7]})
    network.add_links(
        [
            ("office-1", "office-2"), ("office-1", "mail"), ("office-2", "erp"),
            ("mail", "erp"), ("erp", "historian"), ("historian", "scada-1"),
            ("historian", "scada-2"), ("scada-1", "eng-ws"), ("scada-2", "eng-ws"),
            ("scada-1", "plant-gw-1"), ("scada-2", "plant-gw-2"),
            ("eng-ws", "plant-gw-1"),
        ]
    )
    return network


def current_deployment(network: Network) -> ProductAssignment:
    """Today's mono-culture: Windows 7 + IE10 + MS SQL everywhere."""
    assignment = ProductAssignment(network)
    for host in network.hosts:
        for service in network.services_of(host):
            defaults = {OS: WIN_7, WB: IE10, DB: MSSQL_14}
            assignment.assign(host, service, defaults[service])
    return assignment


def main() -> None:
    network = build_upgrade_network()
    similarity = paper_similarity_table()
    before = current_deployment(network)

    constraints = ConstraintSet(
        [
            # Vendor support contract: the historian stack is pinned.
            FixProduct("historian", OS, WIN_7),
            FixProduct("historian", DB, MSSQL_14),
            # Site policy: never configure IE on a Linux host.
            AvoidCombination(GLOBAL, OS, UBUNTU_1404, WB, IE10),
            AvoidCombination(GLOBAL, OS, DEBIAN_80, WB, IE10),
        ]
    )
    result = diversify(network, similarity, constraints=constraints)
    after = result.assignment

    print("Migration plan (install/replace actions)")
    print("=" * 64)
    changes = before.diff(after)
    for host, service in changes:
        print(f"  {host:<12} {service:<9} {before.get(host, service):>12}"
              f"  →  {after.get(host, service)}")
    print(f"\n{len(changes)} of {network.variable_count()} installations "
          f"change; constraints satisfied: {result.satisfied}")
    print(result.summary())
    print()

    print("Resilience payoff (entry office-1 → target plant-gw-1)")
    print("=" * 64)
    for label, assignment in (("before (mono)", before), ("after (optimal)", after)):
        report = diversity_metric(
            network, assignment, similarity, entry="office-1", target="plant-gw-1"
        )
        mttc = mean_time_to_compromise(
            network, assignment, similarity,
            entry="office-1", target="plant-gw-1", runs=500, seed=7,
        )
        print(f"  {label:<16} P(compromise) = {report.p_with:.5f}   "
              f"d_bn = {report.d_bn:.4f}   MTTC = {mttc.mttc:6.1f} ticks")


if __name__ == "__main__":
    main()
