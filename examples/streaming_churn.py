#!/usr/bin/env python3
"""Incremental re-diversification under network churn (repro.stream).

A fleet is never static: hosts join and leave, links change, and CVE feeds
re-score product similarity daily.  This example builds a random workload,
draws a synthetic churn trace, and keeps the optimal diversification fresh
with the streaming engine — each event patches the live MRF plan and
warm-starts TRW-S from the previous fixed point instead of rebuilding and
cold-solving.

Run:  python examples/streaming_churn.py [--hosts N] [--events K] [--cold]

``--compare-cold`` also times the batch pipeline's cold rebuild+solve per
event so the per-event speedup column appears (this is what
``benchmarks/bench_stream_churn.py`` pins at ≥3× on host/link events).
"""

import argparse

from repro.network.generator import (
    RandomNetworkConfig,
    random_network,
    random_similarity,
)
from repro.stream import ChurnConfig, random_churn_trace, replay_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=60)
    parser.add_argument("--events", type=int, default=15)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--solver", choices=("trws", "bp"), default="trws")
    parser.add_argument("--cold", action="store_true",
                        help="disable warm starts (baseline behaviour)")
    parser.add_argument("--compare-cold", action="store_true",
                        help="time a cold rebuild+solve per event too")
    args = parser.parse_args()

    config = RandomNetworkConfig(
        hosts=args.hosts, degree=3, services=3, products_per_service=6,
        seed=args.seed,
    )
    network = random_network(config)
    similarity = random_similarity(config)
    trace = random_churn_trace(
        network, ChurnConfig(events=args.events, seed=args.seed)
    )

    print(f"workload: {network}")
    print(f"churn trace: {len(trace)} events\n")
    report = replay_trace(
        network,
        similarity,
        trace,
        solver=args.solver,
        warm_start=not args.cold,
        compare_cold=args.compare_cold,
    )
    print(report.format_rows())
    print()
    print(report.summary())


if __name__ == "__main__":
    main()
